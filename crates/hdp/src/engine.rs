//! The reusable seating engine: the collapsed CRF Gibbs moves over an
//! [`HdpState`].
//!
//! Every move is expressed *per group*, so the two drivers can share it:
//!
//! * [`crate::Hdp`] sweeps every group (full transductive sampling), and
//! * [`crate::BatchSession`] sweeps only its test group, leaving the frozen
//!   training seating untouched (warm-start serving).
//!
//! A batch-restricted sweep can still do everything the model allows —
//! batch items may join training dishes (that is the collective decision)
//! or nucleate brand-new ones — but it can never move a training item or
//! empty a training table, because those moves only ever touch the group
//! being swept. Dish sufficient statistics do change when batch items join
//! them; that is the transductive semantics, and it is confined to the
//! session's private clone of the state.
//!
//! Group observations are behind `Arc`s, so a move takes a cheap handle to
//! its group and can then mutate seating bookkeeping freely while reading
//! the point — no copying of observations in the inner loop.

// osr-lint: allow-file(unchecked-index, seating invariants link tables assignment and dish ids by construction; guarded fallbacks would hide real breaks that the divergence watchdog must surface)

use std::sync::Arc;

use rand::Rng;

use osr_stats::special::log_sum_exp;
use osr_stats::sampling;

use crate::concentration::{resample_alpha, resample_gamma};
use crate::state::{HdpConfig, HdpState, Table};

/// Draw from `exp(lw)`, hardened against hostile inputs: when the log
/// normalizer is not finite (every weight underflowed to `-inf`, or a
/// predictive evaluated to `NaN`/`+inf`), poison the thread's divergence
/// flag — the serving watchdog will abort the sweep — and fall back to the
/// last candidate, which at every call site is the "open something new"
/// option and therefore keeps the seating bookkeeping structurally valid.
fn seat_choice<R: Rng + ?Sized>(rng: &mut R, lw: &[f64], what: &str) -> usize {
    sampling::try_categorical_log(rng, lw).unwrap_or_else(|| {
        osr_stats::divergence::poison(&format!("non-finite seating weights ({what})"));
        lw.len() - 1
    })
}

impl HdpState {
    /// Resample the table assignment `t_ji` of every item of group `j`
    /// (Eq. 7), in index order.
    pub(crate) fn seat_group_items<R: Rng + ?Sized>(&mut self, j: usize, rng: &mut R) {
        for i in 0..self.groups[j].len() {
            self.seat_item(j, i, rng);
        }
    }

    /// Resample `t_ji` (Eq. 7): seat item `i` of group `j` at an existing
    /// table with probability ∝ `n_jt · f_k(x)` or at a new table with
    /// probability ∝ `α₀ · p(x)`, where `p(x)` marginalizes the new table's
    /// dish over the global menu. The base-measure term comes from the
    /// bank's prior constants ([`osr_stats::DishBank::score_prior`]), and
    /// all candidate buffers live in the state-owned scratch — the move
    /// allocates nothing.
    pub(crate) fn seat_item<R: Rng + ?Sized>(&mut self, j: usize, i: usize, rng: &mut R) {
        self.seat_moves += 1;
        self.unseat(j, i);
        // A second handle to the group keeps `x` readable while the seating
        // bookkeeping below takes `&mut self`.
        let group = Arc::clone(&self.groups[j]);
        let x: &[f64] = &group[i];
        let mut sc = std::mem::take(&mut self.scratch);

        // Predictive of x under every live dish — one fused pass over the
        // dish bank (ascending id order, so the downstream categorical draw
        // consumes the RNG exactly as the per-dish loop did) — and under the
        // prior.
        sc.live.clear();
        sc.live.extend(self.live_dishes().map(|(id, d)| (id, d.slot)));
        sc.slots.clear();
        sc.slots.extend(sc.live.iter().map(|&(_, slot)| slot));
        let d = self.bank.dim();
        let lanes = (sc.slots.len() * d).max(d);
        if sc.solve.len() < lanes {
            sc.solve.resize(lanes, 0.0);
        }
        sc.scores.clear();
        self.bank.score_all(&sc.slots, x, &mut sc.solve[..sc.slots.len() * d], &mut sc.scores);
        let prior_pred = self.bank.score_prior(x, &mut sc.solve[..d]);

        // New-table marginal: Σ_k m_k/(M+γ) f_k + γ/(M+γ) f_0.
        let total_tables = self.total_tables() as f64;
        let gamma = self.gamma;
        sc.menu_lw.clear();
        for (&(id, _), &lp) in sc.live.iter().zip(&sc.scores) {
            sc.menu_lw.push((self.dish(id).n_tables as f64).ln() + lp);
        }
        sc.menu_lw.push(gamma.ln() + prior_pred);
        let new_table_marginal = log_sum_exp(&sc.menu_lw) - (total_tables + gamma).ln();

        // Candidate log-weights: one per existing table, then the new table.
        sc.lw.clear();
        for table in &self.tables[j] {
            // A table pointing at a retired dish is a seating-invariant
            // break: poison the sweep and give the table zero probability
            // mass instead of panicking mid-batch.
            let pred = sc
                .live
                .iter()
                .zip(&sc.scores)
                .find(|&(&(id, _), _)| id == table.dish)
                .map_or_else(
                    || {
                        osr_stats::divergence::poison("seat_item: table serves a retired dish");
                        f64::NEG_INFINITY
                    },
                    |(_, &lp)| lp,
                );
            sc.lw.push((table.members.len() as f64).ln() + pred);
        }
        sc.lw.push(self.alpha.ln() + new_table_marginal);

        let choice = seat_choice(rng, &sc.lw, "table assignment");
        if choice < self.tables[j].len() {
            // Existing table.
            let dish = self.tables[j][choice].dish;
            self.dish_add(dish, x);
            self.tables[j][choice].members.push(i);
            self.assignment[j][i] = choice;
        } else {
            // New table: draw its dish from the menu posterior (same
            // mixture that formed the marginal above).
            let menu_choice = seat_choice(rng, &sc.menu_lw, "menu draw");
            let dish = if menu_choice < sc.live.len() {
                sc.live[menu_choice].0
            } else {
                self.new_dish()
            };
            self.dish_add(dish, x);
            self.dish_mut(dish).n_tables += 1;
            self.tables[j].push(Table { dish, members: vec![i] });
            self.assignment[j][i] = self.tables[j].len() - 1;
        }
        self.scratch = sc;
    }

    /// Remove item `i` of group `j` from its table (no-op when unseated),
    /// deleting the table if it empties and retiring orphaned dishes.
    pub(crate) fn unseat(&mut self, j: usize, i: usize) {
        let ti = self.assignment[j][i];
        if ti == usize::MAX {
            return;
        }
        self.assignment[j][i] = usize::MAX;
        let dish = self.tables[j][ti].dish;
        let group = Arc::clone(&self.groups[j]);
        self.dish_remove(dish, &group[i]);
        let table = &mut self.tables[j][ti];
        if let Some(pos) = table.members.iter().position(|&m| m == i) {
            table.members.swap_remove(pos);
        } else {
            // assignment[j][i] pointed at a table that does not list i: the
            // links are corrupt. Poison instead of panicking; the empty-table
            // cleanup below still runs on consistent data.
            osr_stats::divergence::poison("unseat: item missing from its assigned table");
        }
        if table.members.is_empty() {
            self.tables[j].swap_remove(ti);
            // The table that was last is now at ti: fix its members' links.
            if ti < self.tables[j].len() {
                let moved_members = self.tables[j][ti].members.clone();
                for m in moved_members {
                    self.assignment[j][m] = ti;
                }
            }
            let d = self.dish_mut(dish);
            d.n_tables -= 1;
            self.retire_if_empty(dish);
        }
    }

    /// Resample `k_jt` for every table of group `j` (Eq. 8), in index order.
    pub(crate) fn resample_group_dishes<R: Rng + ?Sized>(&mut self, j: usize, rng: &mut R) {
        for ti in 0..self.tables[j].len() {
            self.resample_table_dish(j, ti, rng);
        }
    }

    /// Resample `k_jt` for one table (Eq. 8): an existing dish with
    /// probability ∝ `m_k · ∏ f_k(x_table)` or a new one with probability
    /// ∝ `γ · ∏ p(x_table)`.
    ///
    /// The block's sufficient statistics are computed **once** and shared by
    /// every candidate dish and by the base-measure term — each candidate
    /// then costs a single rank-m-updated Cholesky
    /// ([`osr_stats::DishBank::block_predictive_stats`]) instead of a
    /// per-point posterior walk.
    pub(crate) fn resample_table_dish<R: Rng + ?Sized>(
        &mut self,
        j: usize,
        ti: usize,
        rng: &mut R,
    ) {
        self.seat_moves += 1;
        let old_dish = self.tables[j][ti].dish;
        // Take the membership list instead of cloning it; it is reinstalled
        // (possibly under a new dish) below.
        let members = std::mem::take(&mut self.tables[j][ti].members);
        let group = Arc::clone(&self.groups[j]);
        let block_refs: Vec<&[f64]> = members.iter().map(|&m| group[m].as_slice()).collect();
        let mut sc = std::mem::take(&mut self.scratch);
        self.bank.compute_block_stats(&block_refs, &mut sc.stats);

        // Detach the block from its dish in one rank-m step.
        {
            let slot = self.dish(old_dish).slot;
            self.bank.detach_block(slot, &sc.stats, &block_refs);
            self.dish_mut(old_dish).n_tables -= 1;
        }
        self.retire_if_empty(old_dish);

        // Score every live dish plus a fresh one, off the same block stats.
        sc.live_ids.clear();
        sc.live_ids.extend(self.live_dishes().map(|(id, _)| id));
        sc.lw.clear();
        for idx in 0..sc.live_ids.len() {
            let id = sc.live_ids[idx];
            let Some(dish) = self.dishes[id].as_ref() else {
                // live_dishes() just yielded this id; a None here means the
                // menu mutated under us. Zero mass + poison, not a panic.
                osr_stats::divergence::poison("resample_table_dish: retired id on the live menu");
                sc.lw.push(f64::NEG_INFINITY);
                continue;
            };
            let (slot, n_tables) = (dish.slot, dish.n_tables);
            let lp = self.bank.block_predictive_stats(slot, &sc.stats);
            sc.lw.push((n_tables as f64).ln() + lp);
        }
        sc.lw.push(self.gamma.ln() + self.bank.block_predictive_prior(&sc.stats));

        let choice = seat_choice(rng, &sc.lw, "dish reassignment");
        let new_dish =
            if choice < sc.live_ids.len() { sc.live_ids[choice] } else { self.new_dish() };
        {
            let slot = self.dish(new_dish).slot;
            self.bank.attach_block(slot, &sc.stats, &block_refs);
            self.dish_mut(new_dish).n_tables += 1;
        }
        self.tables[j][ti].dish = new_dish;
        self.tables[j][ti].members = members;
        self.scratch = sc;
    }

    /// Resample γ (Escobar–West) and α₀ (Teh et al. auxiliary variables)
    /// from the whole franchise's table/dish counts.
    pub(crate) fn resample_concentrations<R: Rng + ?Sized>(
        &mut self,
        config: &HdpConfig,
        rng: &mut R,
    ) {
        let total_tables = self.total_tables();
        let k = self.n_dishes();
        if total_tables == 0 || k == 0 {
            return;
        }
        self.gamma = resample_gamma(rng, self.gamma, k, total_tables, config.gamma_prior);
        let group_sizes: Vec<usize> = self.groups.iter().map(|g| g.len()).collect();
        self.alpha =
            resample_alpha(rng, self.alpha, total_tables, &group_sizes, config.alpha_prior);
    }
}
