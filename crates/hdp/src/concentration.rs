//! Resampling of the DP concentration parameters under their Gamma priors.
//!
//! * [`resample_gamma`] — Escobar & West (1995) auxiliary-variable update
//!   for the top-level concentration γ, which governs how many dishes `K`
//!   the franchise uses given `m_··` total tables.
//! * [`resample_alpha`] — Teh et al. (2006, appendix) update for the shared
//!   group-level concentration α₀, which governs how many tables each
//!   restaurant opens given its item count.

use rand::Rng;

use osr_stats::sampling;

/// One Escobar–West update of a DP concentration parameter with prior
/// `Gamma(a, b)` given that the DP produced `n_components` components from
/// `n_items` draws. For the HDP top level: `n_components = K` dishes,
/// `n_items = m_··` tables.
///
/// # Panics
/// Panics when counts are zero or the prior is non-positive.
pub fn resample_gamma<R: Rng + ?Sized>(
    rng: &mut R,
    current: f64,
    n_components: usize,
    n_items: usize,
    prior: (f64, f64),
) -> f64 {
    let (a, b) = prior;
    assert!(a > 0.0 && b > 0.0, "resample_gamma: prior must be positive");
    assert!(n_components >= 1, "resample_gamma: need at least one component");
    assert!(n_items >= 1, "resample_gamma: need at least one item");
    if n_items == 1 {
        // A single draw carries no information about γ beyond the prior.
        return sampling::gamma(rng, a, b);
    }
    let k = n_components as f64;
    let n = n_items as f64;
    // Auxiliary η ~ Beta(γ + 1, n).
    let eta = sampling::beta(rng, current + 1.0, n);
    let rate = b - eta.ln();
    // Mixture weight between Gamma(a + K, rate) and Gamma(a + K − 1, rate).
    let odds = (a + k - 1.0) / (n * rate);
    let pi = odds / (1.0 + odds);
    if rng.gen::<f64>() < pi {
        sampling::gamma(rng, a + k, rate)
    } else {
        sampling::gamma(rng, a + k - 1.0, rate)
    }
}

/// One auxiliary-variable update of the shared group-level concentration α₀
/// with prior `Gamma(a, b)`, given the total table count `m_··` and the item
/// count `n_j` of every group (Teh et al. 2006, Eq. A.5–A.7).
///
/// # Panics
/// Panics when the prior is non-positive or `total_tables == 0`.
pub fn resample_alpha<R: Rng + ?Sized>(
    rng: &mut R,
    current: f64,
    total_tables: usize,
    group_sizes: &[usize],
    prior: (f64, f64),
) -> f64 {
    let (a, b) = prior;
    assert!(a > 0.0 && b > 0.0, "resample_alpha: prior must be positive");
    assert!(total_tables >= 1, "resample_alpha: need at least one table");
    let mut alpha = current.max(1e-6);
    // A couple of inner iterations mix the auxiliary variables well.
    for _ in 0..2 {
        let mut sum_log_w = 0.0;
        let mut sum_s = 0.0;
        for &nj in group_sizes {
            if nj == 0 {
                continue;
            }
            let njf = nj as f64;
            let w = sampling::beta(rng, alpha + 1.0, njf);
            sum_log_w += w.ln();
            // s_j ~ Bernoulli(n_j / (n_j + α)).
            if rng.gen::<f64>() < njf / (njf + alpha) {
                sum_s += 1.0;
            }
        }
        let shape = a + total_tables as f64 - sum_s;
        let rate = b - sum_log_w;
        alpha = sampling::gamma(rng, shape.max(1e-3), rate.max(1e-9));
    }
    alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gamma_posterior_tracks_component_count() {
        let mut rng = StdRng::seed_from_u64(1);
        // Many components from few items ⇒ large γ; few components from
        // many items ⇒ small γ. Same vague prior for both.
        let prior = (1.0, 0.1);
        let many: f64 = (0..300)
            .map(|_| resample_gamma(&mut rng, 5.0, 80, 100, prior))
            .sum::<f64>()
            / 300.0;
        let few: f64 = (0..300)
            .map(|_| resample_gamma(&mut rng, 5.0, 3, 100, prior))
            .sum::<f64>()
            / 300.0;
        assert!(
            many > 4.0 * few,
            "γ should be much larger with many components: many={many:.2} few={few:.2}"
        );
    }

    #[test]
    fn gamma_respects_tight_prior() {
        let mut rng = StdRng::seed_from_u64(2);
        // Gamma(100, 1) prior (the paper's) has mean 100 and tiny relative
        // spread; moderate data should keep γ near it.
        let prior = (100.0, 1.0);
        let avg: f64 = (0..300)
            .map(|_| resample_gamma(&mut rng, 100.0, 40, 60, prior))
            .sum::<f64>()
            / 300.0;
        assert!((60.0..160.0).contains(&avg), "γ drifted to {avg:.1}");
    }

    #[test]
    fn gamma_single_item_falls_back_to_prior() {
        let mut rng = StdRng::seed_from_u64(3);
        let avg: f64 = (0..500)
            .map(|_| resample_gamma(&mut rng, 7.0, 1, 1, (4.0, 2.0)))
            .sum::<f64>()
            / 500.0;
        assert!((avg - 2.0).abs() < 0.3, "prior mean is 2, got {avg:.2}");
    }

    #[test]
    fn alpha_tracks_table_to_item_ratio() {
        let mut rng = StdRng::seed_from_u64(4);
        let prior = (1.0, 0.1);
        let sizes = vec![200usize; 5];
        // Lots of tables per item ⇒ large α₀.
        let many: f64 = (0..300)
            .map(|_| resample_alpha(&mut rng, 1.0, 400, &sizes, prior))
            .sum::<f64>()
            / 300.0;
        let few: f64 = (0..300)
            .map(|_| resample_alpha(&mut rng, 1.0, 6, &sizes, prior))
            .sum::<f64>()
            / 300.0;
        assert!(many > 5.0 * few, "α₀ should grow with tables: many={many:.2} few={few:.2}");
    }

    #[test]
    fn alpha_ignores_empty_groups() {
        let mut rng = StdRng::seed_from_u64(5);
        let with_empty: f64 = (0..200)
            .map(|_| resample_alpha(&mut rng, 2.0, 10, &[50, 0, 50], (10.0, 1.0)))
            .sum::<f64>()
            / 200.0;
        assert!(with_empty.is_finite() && with_empty > 0.0);
    }

    #[test]
    fn resampled_values_are_positive_and_finite() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let g = resample_gamma(&mut rng, 100.0, 30, 45, (100.0, 1.0));
            let a = resample_alpha(&mut rng, 10.0, 45, &[500, 400, 700], (10.0, 1.0));
            assert!(g.is_finite() && g > 0.0);
            assert!(a.is_finite() && a > 0.0);
        }
    }
}
