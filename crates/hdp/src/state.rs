//! Bookkeeping state of the Chinese Restaurant Franchise: groups, tables,
//! dishes, and the sufficient statistics each dish carries.
//!
//! [`HdpState`] is the single source of truth the seating engine
//! (`engine.rs`) mutates. Group observations sit behind `Arc`s, so cloning a
//! state — the heart of warm-start serving, see
//! [`crate::PosteriorSnapshot`] — copies seating bookkeeping and dish
//! statistics but *shares* the data points.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use osr_stats::{NiwParams, NiwPosterior};

/// Stable identifier of a dish (global mixture component / HDP-OSR
/// *subclass*). Dish ids are never reused within a sampler's lifetime, so
/// they can be reported across iterations (the `S_k` labels of the paper's
/// Tables 1–2).
pub type DishId = usize;

/// Sampler configuration (§4.1.2 values as defaults).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HdpConfig {
    /// Gamma prior (shape, rate) on the top-level concentration γ.
    /// Paper: Gamma(100, 1), chosen large to discourage dish sharing between
    /// known classes.
    pub gamma_prior: (f64, f64),
    /// Gamma prior (shape, rate) on the group-level concentration α₀.
    /// Paper: Gamma(10, 1).
    pub alpha_prior: (f64, f64),
    /// Resample γ and α₀ each sweep (disable to run at fixed values).
    pub resample_concentrations: bool,
    /// Number of Gibbs sweeps for [`crate::Hdp::run`]. Paper: 30.
    pub iterations: usize,
}

impl Default for HdpConfig {
    fn default() -> Self {
        Self {
            gamma_prior: (100.0, 1.0),
            alpha_prior: (10.0, 1.0),
            resample_concentrations: true,
            iterations: 30,
        }
    }
}

impl HdpConfig {
    pub(crate) fn validate(&self) -> crate::Result<()> {
        for (name, (a, b)) in
            [("gamma_prior", self.gamma_prior), ("alpha_prior", self.alpha_prior)]
        {
            if !(a > 0.0 && b > 0.0 && a.is_finite() && b.is_finite()) {
                return Err(crate::HdpError::InvalidConfig(format!(
                    "{name} must have positive finite shape/rate, got ({a}, {b})"
                )));
            }
        }
        if self.iterations == 0 {
            return Err(crate::HdpError::InvalidConfig("iterations must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// One table in a restaurant: the dish it serves plus the indices (within
/// the group) of the items sitting at it.
#[derive(Debug, Clone)]
pub(crate) struct Table {
    pub dish: DishId,
    pub members: Vec<usize>,
}

/// One dish on the global menu.
#[derive(Debug, Clone)]
pub(crate) struct Dish {
    /// NIW posterior over the dish's component parameters, absorbing every
    /// item at every table serving it.
    pub posterior: NiwPosterior,
    /// Number of tables (across all restaurants) serving this dish (`m_·k`).
    pub n_tables: usize,
}

/// The full mutable franchise state the seating engine operates on.
#[derive(Debug, Clone)]
pub(crate) struct HdpState {
    /// Base measure H.
    pub params: NiwParams,
    /// Item data: `groups[j][i]` is observation `x_ji`. Each group is held
    /// behind an `Arc` so that snapshot/session clones share the points
    /// instead of deep-copying them; the engine never mutates observations.
    pub groups: Vec<Arc<Vec<Vec<f64>>>>,
    /// `assignment[j][i]` = index into `tables[j]` (usize::MAX = unseated,
    /// only during initialization).
    pub assignment: Vec<Vec<usize>>,
    /// Tables per restaurant.
    pub tables: Vec<Vec<Table>>,
    /// Global menu, keyed by stable [`DishId`]; `None` slots are retired
    /// dishes (ids are not reused).
    pub dishes: Vec<Option<Dish>>,
    /// Top-level concentration γ.
    pub gamma: f64,
    /// Group-level concentration α₀.
    pub alpha: f64,
    /// Cumulative count of seating decisions (item reseatings per Eq. 7 plus
    /// table dish resamplings per Eq. 8) since this state was created.
    /// Cloned along with the state, so a session's per-sweep delta is
    /// independent of how many sweeps the checkpoint itself ran.
    pub seat_moves: u64,
}

impl HdpState {
    /// Total number of occupied tables across restaurants (`m_··`).
    pub fn total_tables(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }

    /// Number of live dishes (`K`).
    pub fn n_dishes(&self) -> usize {
        self.dishes.iter().filter(|d| d.is_some()).count()
    }

    /// Iterate over live `(DishId, &Dish)` pairs.
    pub fn live_dishes(&self) -> impl Iterator<Item = (DishId, &Dish)> {
        self.dishes.iter().enumerate().filter_map(|(id, d)| d.as_ref().map(|d| (id, d)))
    }

    /// Allocate a new dish starting from the prior.
    pub fn new_dish(&mut self) -> DishId {
        let id = self.dishes.len();
        self.dishes.push(Some(Dish {
            posterior: NiwPosterior::from_prior(&self.params),
            n_tables: 0,
        }));
        id
    }

    /// Mutable access to a live dish.
    ///
    /// # Panics
    /// Panics when the dish is retired — that is a sampler bug.
    #[allow(clippy::expect_used)]
    pub fn dish_mut(&mut self, id: DishId) -> &mut Dish {
        self.dishes[id].as_mut().expect("dish_mut: retired dish")
    }

    /// Shared access to a live dish.
    ///
    /// # Panics
    /// Panics when the dish is retired — that is a sampler bug.
    #[allow(clippy::expect_used)]
    pub fn dish(&self, id: DishId) -> &Dish {
        self.dishes[id].as_ref().expect("dish: retired dish")
    }

    /// Retire a dish once no table serves it.
    pub fn retire_if_empty(&mut self, id: DishId) {
        let empty = {
            let d = self.dish(id);
            d.n_tables == 0 && d.posterior.count() == 0
        };
        if empty {
            self.dishes[id] = None;
        }
    }

    /// Dish currently explaining item `i` of group `j`.
    ///
    /// # Panics
    /// Panics when the item is unseated or indices are out of range.
    pub fn dish_of(&self, group: usize, item: usize) -> DishId {
        let ti = self.assignment[group][item];
        assert!(ti != usize::MAX, "dish_of: sampler has not run yet");
        self.tables[group][ti].dish
    }

    /// Per-dish item counts within one group, sorted by descending count.
    pub fn group_summary(&self, group: usize) -> GroupSummary {
        let mut counts: std::collections::BTreeMap<DishId, usize> = Default::default();
        for table in &self.tables[group] {
            *counts.entry(table.dish).or_insert(0) += table.members.len();
        }
        let mut dish_counts: Vec<(DishId, usize)> = counts.into_iter().collect();
        dish_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        GroupSummary {
            group,
            n_items: self.groups[group].len(),
            n_tables: self.tables[group].len(),
            dish_counts,
        }
    }

    /// Summaries of every live dish, sorted by id.
    pub fn dish_summaries(&self) -> Vec<DishSummary> {
        self.live_dishes()
            .map(|(id, d)| DishSummary {
                id,
                n_tables: d.n_tables,
                n_items: d.posterior.count(),
                mean: d.posterior.mean().to_vec(),
            })
            .collect()
    }

    /// Joint log marginal likelihood of all data given the current seating
    /// (sum of per-dish closed-form marginals) — a convergence diagnostic.
    pub fn joint_log_likelihood(&self) -> f64 {
        self.live_dishes().map(|(_, d)| d.posterior.log_marginal(&self.params)).sum()
    }

    /// Exhaustive O(n) consistency audit; used by tests after every sweep.
    ///
    /// # Panics
    /// Panics on any bookkeeping violation, with a message naming it.
    pub fn check_invariants(&self) {
        let mut dish_tables = vec![0usize; self.dishes.len()];
        let mut dish_items = vec![0usize; self.dishes.len()];
        for (j, tables) in self.tables.iter().enumerate() {
            let mut seated = vec![false; self.groups[j].len()];
            for (ti, table) in tables.iter().enumerate() {
                assert!(!table.members.is_empty(), "group {j} table {ti} is empty");
                assert!(
                    self.dishes.get(table.dish).is_some_and(Option::is_some),
                    "group {j} table {ti} serves retired dish {}",
                    table.dish
                );
                dish_tables[table.dish] += 1;
                dish_items[table.dish] += table.members.len();
                for &m in &table.members {
                    assert!(!seated[m], "item {m} of group {j} seated twice");
                    seated[m] = true;
                    assert_eq!(
                        self.assignment[j][m], ti,
                        "assignment of item {m} in group {j} disagrees with table membership"
                    );
                }
            }
            assert!(
                seated.iter().all(|&s| s),
                "group {j} has unseated items outside initialization"
            );
        }
        for (id, dish) in self.dishes.iter().enumerate() {
            if let Some(d) = dish {
                assert_eq!(d.n_tables, dish_tables[id], "dish {id} table count drift");
                assert_eq!(d.posterior.count(), dish_items[id], "dish {id} item count drift");
                assert!(d.n_tables > 0, "live dish {id} has no tables");
            } else {
                assert_eq!(dish_tables[id], 0, "retired dish {id} still served");
            }
        }
    }
}

/// Public read-only summary of one dish.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DishSummary {
    /// Stable dish id (the paper's subclass label `S_k`).
    pub id: DishId,
    /// Tables serving it across all groups (`m_·k`).
    pub n_tables: usize,
    /// Items absorbed across all groups.
    pub n_items: usize,
    /// Posterior mean of the component.
    pub mean: Vec<f64>,
}

/// Public read-only summary of one group's composition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupSummary {
    /// Group index.
    pub group: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of tables.
    pub n_tables: usize,
    /// `(dish id, item count)` per dish used in this group, sorted by
    /// descending count.
    pub dish_counts: Vec<(DishId, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_linalg::Matrix;

    fn params() -> NiwParams {
        NiwParams::new(vec![0.0, 0.0], 1.0, 4.0, Matrix::identity(2)).unwrap()
    }

    fn empty_state() -> HdpState {
        HdpState {
            params: params(),
            groups: vec![Arc::new(vec![vec![0.0, 0.0], vec![1.0, 1.0]])],
            assignment: vec![vec![usize::MAX, usize::MAX]],
            tables: vec![vec![]],
            dishes: vec![],
            gamma: 1.0,
            alpha: 1.0,
            seat_moves: 0,
        }
    }

    #[test]
    fn config_defaults_match_paper() {
        let c = HdpConfig::default();
        assert_eq!(c.gamma_prior, (100.0, 1.0));
        assert_eq!(c.alpha_prior, (10.0, 1.0));
        assert_eq!(c.iterations, 30);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        let c = HdpConfig { iterations: 0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = HdpConfig { gamma_prior: (0.0, 1.0), ..Default::default() };
        assert!(c.validate().is_err());
        let c = HdpConfig { alpha_prior: (1.0, f64::NAN), ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn dish_lifecycle() {
        let mut s = empty_state();
        let id = s.new_dish();
        assert_eq!(id, 0);
        assert_eq!(s.n_dishes(), 1);
        // Untouched dish retires.
        s.retire_if_empty(id);
        assert_eq!(s.n_dishes(), 0);
        // New ids are not reused.
        let id2 = s.new_dish();
        assert_eq!(id2, 1);
    }

    #[test]
    fn invariants_accept_consistent_state() {
        let mut s = empty_state();
        let dish = s.new_dish();
        let x0 = s.groups[0][0].clone();
        let x1 = s.groups[0][1].clone();
        s.dish_mut(dish).posterior.add(&x0);
        s.dish_mut(dish).posterior.add(&x1);
        s.dish_mut(dish).n_tables = 1;
        s.tables[0].push(Table { dish, members: vec![0, 1] });
        s.assignment[0] = vec![0, 0];
        s.check_invariants();
        assert_eq!(s.total_tables(), 1);
    }

    #[test]
    fn cloned_state_shares_group_data() {
        let s = empty_state();
        let c = s.clone();
        assert!(
            Arc::ptr_eq(&s.groups[0], &c.groups[0]),
            "state clones must share observations, not deep-copy them"
        );
    }

    #[test]
    #[should_panic(expected = "table count drift")]
    fn invariants_catch_table_count_drift() {
        let mut s = empty_state();
        let dish = s.new_dish();
        let x0 = s.groups[0][0].clone();
        let x1 = s.groups[0][1].clone();
        s.dish_mut(dish).posterior.add(&x0);
        s.dish_mut(dish).posterior.add(&x1);
        s.dish_mut(dish).n_tables = 2; // lie
        s.tables[0].push(Table { dish, members: vec![0, 1] });
        s.assignment[0] = vec![0, 0];
        s.check_invariants();
    }

    #[test]
    #[should_panic(expected = "seated twice")]
    fn invariants_catch_double_seating() {
        let mut s = empty_state();
        let dish = s.new_dish();
        let x0 = s.groups[0][0].clone();
        s.dish_mut(dish).posterior.add(&x0);
        s.dish_mut(dish).posterior.add(&x0);
        s.dish_mut(dish).n_tables = 1;
        s.tables[0].push(Table { dish, members: vec![0, 0] });
        s.assignment[0] = vec![0, 0];
        s.check_invariants();
    }
}
