//! Bookkeeping state of the Chinese Restaurant Franchise: groups, tables,
//! dishes, and the sufficient statistics each dish carries.
//!
//! [`HdpState`] is the single source of truth the seating engine
//! (`engine.rs`) mutates. Group observations sit behind `Arc`s, so cloning a
//! state — the heart of warm-start serving, see
//! [`crate::PosteriorSnapshot`] — copies seating bookkeeping and dish
//! statistics but *shares* the data points.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use osr_stats::{BlockStats, DishBank, NiwParams, Slot};

/// Stable identifier of a dish (global mixture component / HDP-OSR
/// *subclass*). Dish ids are never reused within a sampler's lifetime, so
/// they can be reported across iterations (the `S_k` labels of the paper's
/// Tables 1–2).
pub type DishId = usize;

/// Sampler configuration (§4.1.2 values as defaults).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HdpConfig {
    /// Gamma prior (shape, rate) on the top-level concentration γ.
    /// Paper: Gamma(100, 1), chosen large to discourage dish sharing between
    /// known classes.
    pub gamma_prior: (f64, f64),
    /// Gamma prior (shape, rate) on the group-level concentration α₀.
    /// Paper: Gamma(10, 1).
    pub alpha_prior: (f64, f64),
    /// Resample γ and α₀ each sweep (disable to run at fixed values).
    pub resample_concentrations: bool,
    /// Number of Gibbs sweeps for [`crate::Hdp::run`]. Paper: 30.
    pub iterations: usize,
}

impl Default for HdpConfig {
    fn default() -> Self {
        Self {
            gamma_prior: (100.0, 1.0),
            alpha_prior: (10.0, 1.0),
            resample_concentrations: true,
            iterations: 30,
        }
    }
}

impl HdpConfig {
    pub(crate) fn validate(&self) -> crate::Result<()> {
        for (name, (a, b)) in
            [("gamma_prior", self.gamma_prior), ("alpha_prior", self.alpha_prior)]
        {
            if !(a > 0.0 && b > 0.0 && a.is_finite() && b.is_finite()) {
                return Err(crate::HdpError::InvalidConfig(format!(
                    "{name} must have positive finite shape/rate, got ({a}, {b})"
                )));
            }
        }
        if self.iterations == 0 {
            return Err(crate::HdpError::InvalidConfig("iterations must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// One table in a restaurant: the dish it serves plus the indices (within
/// the group) of the items sitting at it.
#[derive(Debug, Clone)]
pub(crate) struct Table {
    pub dish: DishId,
    pub members: Vec<usize>,
}

/// One dish on the global menu.
///
/// The dish's NIW posterior lives in the state's [`DishBank`]
/// (struct-of-arrays storage with precomputed predictive constants); the
/// menu entry only records which bank slot it occupies. Dish *ids* stay
/// stable and monotone; bank *slots* are recycled through the bank's
/// free-list when a dish retires.
#[derive(Debug, Clone)]
pub(crate) struct Dish {
    /// Storage slot in [`HdpState::bank`] holding this dish's posterior.
    pub slot: Slot,
    /// Number of tables (across all restaurants) serving this dish (`m_·k`).
    pub n_tables: usize,
}

/// Reusable buffers for the per-item / per-table seating moves, owned by
/// the state so the hot loops of `engine.rs` allocate nothing per decision.
/// Purely scratch: contents are meaningless between moves, and a cloned
/// state (snapshot → session) merely inherits capacity.
#[derive(Debug, Clone, Default)]
pub(crate) struct SeatScratch {
    /// Live `(dish id, bank slot)` menu, rebuilt per move.
    pub live: Vec<(DishId, Slot)>,
    /// The slots of `live`, in the same order (the one-vs-all kernel's
    /// argument layout).
    pub slots: Vec<Slot>,
    /// `d`-length solve buffer for the scoring kernels.
    pub solve: Vec<f64>,
    /// Per-dish predictive log-densities, parallel to `live`.
    pub scores: Vec<f64>,
    /// Menu-marginal log-weights (per dish, then the γ·prior tail).
    pub menu_lw: Vec<f64>,
    /// Candidate log-weights of the categorical seating draw.
    pub lw: Vec<f64>,
    /// Live dish ids for the table-dish move.
    pub live_ids: Vec<DishId>,
    /// Block sufficient statistics shared across Eq. 8 candidates.
    pub stats: BlockStats,
}

/// The full mutable franchise state the seating engine operates on.
#[derive(Debug, Clone)]
pub(crate) struct HdpState {
    /// Base measure H.
    pub params: NiwParams,
    /// Item data: `groups[j][i]` is observation `x_ji`. Each group is held
    /// behind an `Arc` so that snapshot/session clones share the points
    /// instead of deep-copying them; the engine never mutates observations.
    pub groups: Vec<Arc<Vec<Vec<f64>>>>,
    /// `assignment[j][i]` = index into `tables[j]` (usize::MAX = unseated,
    /// only during initialization).
    pub assignment: Vec<Vec<usize>>,
    /// Tables per restaurant.
    pub tables: Vec<Vec<Table>>,
    /// Global menu, keyed by stable [`DishId`]; `None` entries are retired
    /// dishes (ids are not reused).
    pub dishes: Vec<Option<Dish>>,
    /// Struct-of-arrays bank of the live dishes' NIW posteriors with
    /// precomputed predictive constants — the vectorized scoring hot path.
    pub bank: DishBank,
    /// Top-level concentration γ.
    pub gamma: f64,
    /// Group-level concentration α₀.
    pub alpha: f64,
    /// Cumulative count of seating decisions (item reseatings per Eq. 7 plus
    /// table dish resamplings per Eq. 8) since this state was created.
    /// Cloned along with the state, so a session's per-sweep delta is
    /// independent of how many sweeps the checkpoint itself ran.
    pub seat_moves: u64,
    /// Per-move scratch buffers (see [`SeatScratch`]); never observable.
    pub scratch: SeatScratch,
}

impl HdpState {
    /// Total number of occupied tables across restaurants (`m_··`).
    pub fn total_tables(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }

    /// Number of live dishes (`K`).
    pub fn n_dishes(&self) -> usize {
        self.dishes.iter().filter(|d| d.is_some()).count()
    }

    /// Iterate over live `(DishId, &Dish)` pairs.
    pub fn live_dishes(&self) -> impl Iterator<Item = (DishId, &Dish)> {
        self.dishes.iter().enumerate().filter_map(|(id, d)| d.as_ref().map(|d| (id, d)))
    }

    /// Allocate a new dish starting from the prior (its posterior occupies a
    /// fresh or recycled bank slot).
    pub fn new_dish(&mut self) -> DishId {
        let id = self.dishes.len();
        let slot = self.bank.alloc();
        self.dishes.push(Some(Dish { slot, n_tables: 0 }));
        id
    }

    /// Mutable access to a live dish.
    ///
    /// # Panics
    /// Panics when the dish is retired — that is a sampler bug.
    #[allow(clippy::expect_used)]
    pub fn dish_mut(&mut self, id: DishId) -> &mut Dish {
        self.dishes[id].as_mut().expect("dish_mut: retired dish")
    }

    /// Shared access to a live dish.
    ///
    /// # Panics
    /// Panics when the dish is retired — that is a sampler bug.
    #[allow(clippy::expect_used)]
    pub fn dish(&self, id: DishId) -> &Dish {
        self.dishes[id].as_ref().expect("dish: retired dish")
    }

    /// Retire a dish once no table serves it, releasing its bank slot for
    /// reuse (the dish *id* is never reused).
    pub fn retire_if_empty(&mut self, id: DishId) {
        let empty_slot = {
            let d = self.dish(id);
            (d.n_tables == 0 && self.bank.count(d.slot) == 0).then_some(d.slot)
        };
        if let Some(slot) = empty_slot {
            self.bank.release(slot);
            self.dishes[id] = None;
        }
    }

    /// Absorb observation `x` into dish `id`'s posterior.
    ///
    /// # Panics
    /// Panics when the dish is retired.
    pub fn dish_add(&mut self, id: DishId, x: &[f64]) {
        let slot = self.dish(id).slot;
        self.bank.add_obs(slot, x);
    }

    /// Remove observation `x` from dish `id`'s posterior.
    ///
    /// # Panics
    /// Panics when the dish is retired.
    pub fn dish_remove(&mut self, id: DishId, x: &[f64]) {
        let slot = self.dish(id).slot;
        self.bank.remove_obs(slot, x);
    }

    /// Dish currently explaining item `i` of group `j`.
    ///
    /// # Panics
    /// Panics when the item is unseated or indices are out of range.
    pub fn dish_of(&self, group: usize, item: usize) -> DishId {
        let ti = self.assignment[group][item];
        assert!(ti != usize::MAX, "dish_of: sampler has not run yet");
        self.tables[group][ti].dish
    }

    /// Per-dish item counts within one group, sorted by descending count.
    pub fn group_summary(&self, group: usize) -> GroupSummary {
        let mut counts: std::collections::BTreeMap<DishId, usize> = Default::default();
        for table in &self.tables[group] {
            *counts.entry(table.dish).or_insert(0) += table.members.len();
        }
        let mut dish_counts: Vec<(DishId, usize)> = counts.into_iter().collect();
        dish_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        GroupSummary {
            group,
            n_items: self.groups[group].len(),
            n_tables: self.tables[group].len(),
            dish_counts,
        }
    }

    /// Summaries of every live dish, sorted by id.
    pub fn dish_summaries(&self) -> Vec<DishSummary> {
        self.live_dishes()
            .map(|(id, d)| DishSummary {
                id,
                n_tables: d.n_tables,
                n_items: self.bank.count(d.slot),
                mean: self.bank.mean(d.slot).to_vec(),
            })
            .collect()
    }

    /// Joint log marginal likelihood of all data given the current seating
    /// (sum of per-dish closed-form marginals) — a convergence diagnostic.
    pub fn joint_log_likelihood(&self) -> f64 {
        self.live_dishes().map(|(_, d)| self.bank.log_marginal(d.slot, &self.params)).sum()
    }

    /// Exhaustive O(n) consistency audit; used by tests after every sweep.
    ///
    /// # Panics
    /// Panics on any bookkeeping violation, with a message naming it.
    pub fn check_invariants(&self) {
        let mut dish_tables = vec![0usize; self.dishes.len()];
        let mut dish_items = vec![0usize; self.dishes.len()];
        for (j, tables) in self.tables.iter().enumerate() {
            let mut seated = vec![false; self.groups[j].len()];
            for (ti, table) in tables.iter().enumerate() {
                assert!(!table.members.is_empty(), "group {j} table {ti} is empty");
                assert!(
                    self.dishes.get(table.dish).is_some_and(Option::is_some),
                    "group {j} table {ti} serves retired dish {}",
                    table.dish
                );
                dish_tables[table.dish] += 1;
                dish_items[table.dish] += table.members.len();
                for &m in &table.members {
                    assert!(!seated[m], "item {m} of group {j} seated twice");
                    seated[m] = true;
                    assert_eq!(
                        self.assignment[j][m], ti,
                        "assignment of item {m} in group {j} disagrees with table membership"
                    );
                }
            }
            assert!(
                seated.iter().all(|&s| s),
                "group {j} has unseated items outside initialization"
            );
        }
        let mut slot_owner = vec![None::<DishId>; self.bank.n_slots()];
        for (id, dish) in self.dishes.iter().enumerate() {
            if let Some(d) = dish {
                assert_eq!(d.n_tables, dish_tables[id], "dish {id} table count drift");
                assert_eq!(self.bank.count(d.slot), dish_items[id], "dish {id} item count drift");
                assert!(d.n_tables > 0, "live dish {id} has no tables");
                assert!(self.bank.is_live(d.slot), "dish {id} points at freed bank slot {}", d.slot);
                if let Some(prev) = slot_owner[d.slot].replace(id) {
                    panic!("dishes {prev} and {id} share bank slot {}", d.slot);
                }
            } else {
                assert_eq!(dish_tables[id], 0, "retired dish {id} still served");
            }
        }
        assert_eq!(
            self.bank.n_live(),
            self.n_dishes(),
            "bank live-slot count disagrees with the menu"
        );
    }
}

/// Public read-only summary of one dish.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DishSummary {
    /// Stable dish id (the paper's subclass label `S_k`).
    pub id: DishId,
    /// Tables serving it across all groups (`m_·k`).
    pub n_tables: usize,
    /// Items absorbed across all groups.
    pub n_items: usize,
    /// Posterior mean of the component.
    pub mean: Vec<f64>,
}

/// Public read-only summary of one group's composition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupSummary {
    /// Group index.
    pub group: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of tables.
    pub n_tables: usize,
    /// `(dish id, item count)` per dish used in this group, sorted by
    /// descending count.
    pub dish_counts: Vec<(DishId, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_linalg::Matrix;

    fn params() -> NiwParams {
        NiwParams::new(vec![0.0, 0.0], 1.0, 4.0, Matrix::identity(2)).unwrap()
    }

    fn empty_state() -> HdpState {
        let params = params();
        let bank = DishBank::new(&params);
        HdpState {
            params,
            groups: vec![Arc::new(vec![vec![0.0, 0.0], vec![1.0, 1.0]])],
            assignment: vec![vec![usize::MAX, usize::MAX]],
            tables: vec![vec![]],
            dishes: vec![],
            bank,
            gamma: 1.0,
            alpha: 1.0,
            seat_moves: 0,
            scratch: SeatScratch::default(),
        }
    }

    #[test]
    fn config_defaults_match_paper() {
        let c = HdpConfig::default();
        assert_eq!(c.gamma_prior, (100.0, 1.0));
        assert_eq!(c.alpha_prior, (10.0, 1.0));
        assert_eq!(c.iterations, 30);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        let c = HdpConfig { iterations: 0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = HdpConfig { gamma_prior: (0.0, 1.0), ..Default::default() };
        assert!(c.validate().is_err());
        let c = HdpConfig { alpha_prior: (1.0, f64::NAN), ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn dish_lifecycle() {
        let mut s = empty_state();
        let id = s.new_dish();
        assert_eq!(id, 0);
        assert_eq!(s.n_dishes(), 1);
        // Untouched dish retires.
        s.retire_if_empty(id);
        assert_eq!(s.n_dishes(), 0);
        // New ids are not reused.
        let id2 = s.new_dish();
        assert_eq!(id2, 1);
    }

    #[test]
    fn invariants_accept_consistent_state() {
        let mut s = empty_state();
        let dish = s.new_dish();
        let x0 = s.groups[0][0].clone();
        let x1 = s.groups[0][1].clone();
        s.dish_add(dish, &x0);
        s.dish_add(dish, &x1);
        s.dish_mut(dish).n_tables = 1;
        s.tables[0].push(Table { dish, members: vec![0, 1] });
        s.assignment[0] = vec![0, 0];
        s.check_invariants();
        assert_eq!(s.total_tables(), 1);
    }

    #[test]
    fn cloned_state_shares_group_data() {
        let s = empty_state();
        let c = s.clone();
        assert!(
            Arc::ptr_eq(&s.groups[0], &c.groups[0]),
            "state clones must share observations, not deep-copy them"
        );
    }

    #[test]
    #[should_panic(expected = "table count drift")]
    fn invariants_catch_table_count_drift() {
        let mut s = empty_state();
        let dish = s.new_dish();
        let x0 = s.groups[0][0].clone();
        let x1 = s.groups[0][1].clone();
        s.dish_add(dish, &x0);
        s.dish_add(dish, &x1);
        s.dish_mut(dish).n_tables = 2; // lie
        s.tables[0].push(Table { dish, members: vec![0, 1] });
        s.assignment[0] = vec![0, 0];
        s.check_invariants();
    }

    #[test]
    #[should_panic(expected = "seated twice")]
    fn invariants_catch_double_seating() {
        let mut s = empty_state();
        let dish = s.new_dish();
        let x0 = s.groups[0][0].clone();
        s.dish_add(dish, &x0);
        s.dish_add(dish, &x0);
        s.dish_mut(dish).n_tables = 1;
        s.tables[0].push(Table { dish, members: vec![0, 0] });
        s.assignment[0] = vec![0, 0];
        s.check_invariants();
    }
}
