//! Snapshot codec for the HDP posterior: the section payloads a durable
//! [`crate::PosteriorSnapshot`] checkpoint is made of.
//!
//! The container framing (magic, version, CRCs) lives in
//! [`osr_stats::snapshot`]; this module owns only the *section* byte
//! layouts for the franchise state. Everything serialized here is canonical
//! observable state — seating, dish statistics, concentrations, the
//! free-list replay order — while derived quantities (predictive constants,
//! caches, scratch buffers) are rebuilt on load through the exact code paths
//! a freshly trained sampler uses, which is what makes save → load →
//! re-save byte-identical and a reloaded replica bit-equal to the original.
//!
//! Deliberately named `persist`, not `snapshot`: the workspace lint scopes
//! its `snapshot-versioned` rule to `*/snapshot.rs` files, which are the
//! modules that own serializable container/report types.

use std::sync::Arc;

use osr_stats::snapshot::{Dec, Enc, SnapResult, SnapshotError, SnapshotFile, SnapshotWriter};
use osr_stats::{DishBank, NiwParams, NiwPosterior};

use crate::state::{Dish, HdpConfig, HdpState, Table};

/// Section id of the base-measure hyperparameters (NIW prior).
pub const SEC_PARAMS: u32 = 1;
/// Section id of the sampler configuration.
pub const SEC_HDP_CONFIG: u32 = 2;
/// Section id of the seating arrangement (groups, tables, dishes, menu,
/// concentrations).
pub const SEC_SEATING: u32 = 3;
/// Section id of the dish bank (per-dish NIW sufficient statistics).
pub const SEC_BANK: u32 = 4;
/// Section id of the cached prior posterior (the "empty dish" predictive).
pub const SEC_PRIOR_POST: u32 = 5;

/// `u64` sentinel standing in for `usize::MAX` (an unseated item) on the
/// wire — the format is 64-bit regardless of host.
const UNSEATED: u64 = u64::MAX;

/// Append every HDP section to `w`.
pub(crate) fn write_sections(
    state: &HdpState,
    config: &HdpConfig,
    prior_post: &NiwPosterior,
    w: &mut SnapshotWriter,
) {
    let mut enc = Enc::new();
    state.params.encode_into(&mut enc);
    w.section(SEC_PARAMS, enc.into_bytes());

    let mut enc = Enc::new();
    enc.put_f64(config.gamma_prior.0);
    enc.put_f64(config.gamma_prior.1);
    enc.put_f64(config.alpha_prior.0);
    enc.put_f64(config.alpha_prior.1);
    enc.put_bool(config.resample_concentrations);
    enc.put_usize(config.iterations);
    w.section(SEC_HDP_CONFIG, enc.into_bytes());

    let mut enc = Enc::new();
    encode_seating(state, &mut enc);
    w.section(SEC_SEATING, enc.into_bytes());

    let mut enc = Enc::new();
    state.bank.encode_into(&mut enc);
    w.section(SEC_BANK, enc.into_bytes());

    let mut enc = Enc::new();
    prior_post.encode_into(&mut enc);
    w.section(SEC_PRIOR_POST, enc.into_bytes());
}

/// Decode every HDP section of a verified container back into snapshot
/// parts, cross-validating the seating bookkeeping so a later sweep can
/// never panic on state a corrupted-but-CRC-valid writer produced.
pub(crate) fn read_sections(
    file: &SnapshotFile<'_>,
) -> SnapResult<(HdpState, HdpConfig, NiwPosterior)> {
    let mut dec = Dec::new(file.section(SEC_PARAMS)?);
    let params = NiwParams::decode_from(&mut dec)?;
    dec.finish("params section")?;
    if params.dim() != file.dim() {
        return Err(SnapshotError::DimensionMismatch {
            expected: file.dim(),
            got: params.dim(),
        });
    }

    let mut dec = Dec::new(file.section(SEC_HDP_CONFIG)?);
    let config = HdpConfig {
        gamma_prior: (dec.f64("gamma_prior shape")?, dec.f64("gamma_prior rate")?),
        alpha_prior: (dec.f64("alpha_prior shape")?, dec.f64("alpha_prior rate")?),
        resample_concentrations: dec.bool("resample_concentrations")?,
        iterations: dec.usize("iterations")?,
    };
    dec.finish("config section")?;
    config
        .validate()
        .map_err(|e| SnapshotError::Malformed(format!("HdpConfig: {e}")))?;

    let mut dec = Dec::new(file.section(SEC_BANK)?);
    let bank = DishBank::decode_from(&mut dec, &params)?;
    dec.finish("bank section")?;

    let mut dec = Dec::new(file.section(SEC_PRIOR_POST)?);
    let prior_post = NiwPosterior::decode_from(&mut dec)?;
    dec.finish("prior posterior section")?;
    if prior_post.dim() != params.dim() {
        return Err(SnapshotError::DimensionMismatch {
            expected: params.dim(),
            got: prior_post.dim(),
        });
    }

    let mut dec = Dec::new(file.section(SEC_SEATING)?);
    let state = decode_seating(&mut dec, params, bank)?;
    dec.finish("seating section")?;
    Ok((state, config, prior_post))
}

fn encode_seating(state: &HdpState, enc: &mut Enc) {
    enc.put_usize(state.groups.len());
    for (group, assignment) in state.groups.iter().zip(&state.assignment) {
        enc.put_usize(group.len());
        for point in group.iter() {
            enc.put_f64_slice(point);
        }
        debug_assert_eq!(group.len(), assignment.len());
        for &table in assignment {
            enc.put_u64(if table == usize::MAX { UNSEATED } else { table as u64 });
        }
    }
    for tables in &state.tables {
        enc.put_usize(tables.len());
        for table in tables {
            enc.put_usize(table.dish);
            enc.put_usize(table.members.len());
            for &member in &table.members {
                enc.put_usize(member);
            }
        }
    }
    enc.put_usize(state.dishes.len());
    for dish in &state.dishes {
        enc.put_bool(dish.is_some());
        if let Some(dish) = dish {
            enc.put_usize(dish.slot);
            enc.put_usize(dish.n_tables);
        }
    }
    enc.put_f64(state.gamma);
    enc.put_f64(state.alpha);
    enc.put_u64(state.seat_moves);
}

fn decode_seating(
    dec: &mut Dec<'_>,
    params: NiwParams,
    bank: DishBank,
) -> SnapResult<HdpState> {
    let d = params.dim();
    let n_groups = dec.count(8, "group count")?;
    let mut groups = Vec::with_capacity(n_groups);
    let mut assignment = Vec::with_capacity(n_groups);
    for j in 0..n_groups {
        let len = dec.count(8 * (d + 1), "group length")?;
        let mut points = Vec::with_capacity(len);
        for i in 0..len {
            let point = dec.f64_vec(d, "group point")?;
            if point.iter().any(|v| !v.is_finite()) {
                return Err(SnapshotError::Malformed(format!(
                    "group {j} point {i} has a non-finite coordinate"
                )));
            }
            points.push(point);
        }
        let mut seats = Vec::with_capacity(len);
        for _ in 0..len {
            let raw = dec.u64("assignment entry")?;
            seats.push(if raw == UNSEATED {
                usize::MAX
            } else {
                usize::try_from(raw).map_err(|_| {
                    SnapshotError::Malformed(format!(
                        "group {j}: assignment entry {raw} exceeds the host's usize"
                    ))
                })?
            });
        }
        groups.push(Arc::new(points));
        assignment.push(seats);
    }
    let mut tables = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        let n_tables = dec.count(2 * 8, "table count")?;
        let mut group_tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let dish = dec.usize("table dish")?;
            let n_members = dec.count(8, "table member count")?;
            let mut members = Vec::with_capacity(n_members);
            for _ in 0..n_members {
                members.push(dec.usize("table member")?);
            }
            group_tables.push(Table { dish, members });
        }
        tables.push(group_tables);
    }
    let n_dish_ids = dec.count(1, "dish menu length")?;
    let mut dishes = Vec::with_capacity(n_dish_ids);
    for _ in 0..n_dish_ids {
        if dec.bool("dish live flag")? {
            let slot = dec.usize("dish slot")?;
            let n_tables = dec.usize("dish table count")?;
            dishes.push(Some(Dish { slot, n_tables }));
        } else {
            dishes.push(None);
        }
    }
    let gamma = dec.f64("gamma")?;
    let alpha = dec.f64("alpha")?;
    let seat_moves = dec.u64("seat_moves")?;
    if !(gamma.is_finite() && gamma > 0.0 && alpha.is_finite() && alpha > 0.0) {
        return Err(SnapshotError::Malformed(format!(
            "concentrations gamma = {gamma}, alpha = {alpha} out of domain"
        )));
    }

    let state = HdpState {
        params,
        groups,
        assignment,
        tables,
        dishes,
        bank,
        gamma,
        alpha,
        seat_moves,
        scratch: Default::default(),
    };
    validate_seating(&state)?;
    Ok(state)
}

/// Cross-validate the decoded bookkeeping: every index that the seating
/// engine would later follow unchecked must resolve. This is the non-panicking
/// twin of `HdpState::check_invariants` — corruption that survives the CRCs
/// (i.e. a buggy or hostile writer) surfaces here as
/// [`SnapshotError::Malformed`].
fn validate_seating(state: &HdpState) -> SnapResult<()> {
    let malformed = |msg: String| Err(SnapshotError::Malformed(msg));
    if state.tables.len() != state.groups.len() {
        return malformed(format!(
            "{} table lists for {} groups",
            state.tables.len(),
            state.groups.len()
        ));
    }
    for (j, (group, seats)) in state.groups.iter().zip(&state.assignment).enumerate() {
        if group.len() != seats.len() {
            return malformed(format!(
                "group {j}: {} assignment entries for {} points",
                seats.len(),
                group.len()
            ));
        }
        for (i, &t) in seats.iter().enumerate() {
            if t != usize::MAX {
                if t >= state.tables[j].len() {
                    return malformed(format!(
                        "group {j} item {i} sits at table {t} of {}",
                        state.tables[j].len()
                    ));
                }
                if !state.tables[j][t].members.contains(&i) {
                    return malformed(format!(
                        "group {j} item {i} is not among table {t}'s members"
                    ));
                }
            }
        }
    }
    let mut n_tables_by_dish = vec![0usize; state.dishes.len()];
    for (j, tables) in state.tables.iter().enumerate() {
        for (t, table) in tables.iter().enumerate() {
            match state.dishes.get(table.dish) {
                Some(Some(_)) => n_tables_by_dish[table.dish] += 1,
                _ => {
                    return malformed(format!(
                        "group {j} table {t} serves unknown dish {}",
                        table.dish
                    ))
                }
            }
            if table.members.is_empty() {
                return malformed(format!("group {j} table {t} has no members"));
            }
            for &i in &table.members {
                if i >= state.groups[j].len() || state.assignment[j][i] != t {
                    return malformed(format!(
                        "group {j} table {t} lists member {i} that is not seated there"
                    ));
                }
            }
        }
    }
    let mut seen_slots = vec![false; state.bank.n_slots()];
    for (id, dish) in state.live_dishes() {
        if dish.slot >= state.bank.n_slots() || !state.bank.is_live(dish.slot) {
            return malformed(format!("dish {id} occupies dead bank slot {}", dish.slot));
        }
        if seen_slots[dish.slot] {
            return malformed(format!("dish {id} shares bank slot {}", dish.slot));
        }
        seen_slots[dish.slot] = true;
        if dish.n_tables != n_tables_by_dish[id] {
            return malformed(format!(
                "dish {id} claims {} tables but {} serve it",
                dish.n_tables, n_tables_by_dish[id]
            ));
        }
    }
    let n_live_dishes = state.live_dishes().count();
    if state.bank.n_live() != n_live_dishes {
        return malformed(format!(
            "bank has {} live slots for {} live dishes",
            state.bank.n_live(),
            n_live_dishes
        ));
    }
    Ok(())
}
