//! Hierarchical Dirichlet Process with collapsed Chinese-Restaurant-Franchise
//! Gibbs sampling (Teh et al. 2006) — the generative engine of HDP-OSR.
//!
//! The model (paper Eq. 4):
//!
//! ```text
//! G₀ | γ, H   ~ DP(γ, H)
//! G_j | α₀, G₀ ~ DP(α₀, G₀)          for each group j
//! θ_ji | G_j  ~ G_j                   for each item i of group j
//! x_ji | θ_ji ~ N(· | θ_ji)
//! ```
//!
//! In the franchise metaphor each *group* is a restaurant, each mixture
//! component in a restaurant is a *table* `t_ji`, and tables across all
//! restaurants share a global menu of *dishes* `k_jt` — the subclasses of
//! HDP-OSR. The base measure `H` is Normal–Inverse-Wishart, so both indicator
//! families are sampled with everything else integrated out
//! (Eq. 7 for tables, Eq. 8 for dishes).
//!
//! Concentration parameters carry the paper's vague Gamma priors
//! (γ ~ Gamma(100, 1), α₀ ~ Gamma(10, 1), §4.1.2) and are resampled each
//! sweep with the Escobar–West (γ) and Teh-et-al. auxiliary-variable (α₀)
//! schemes.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod concentration;
mod engine;
mod persist;
mod sampler;
mod session;
mod state;
mod trace;
mod watchdog;

pub use concentration::{resample_alpha, resample_gamma};
pub use sampler::Hdp;
pub use session::{BatchSession, PosteriorSnapshot};
pub use state::{DishId, DishSummary, GroupSummary, HdpConfig};
pub use trace::{
    SweepTrace, ALPHA_METRIC, GAMMA_METRIC, SEAT_MOVES_METRIC, SWEEPS_METRIC, SWEEP_TIME_METRIC,
};
pub use watchdog::Divergence;

/// Errors produced while building or running an HDP.
#[derive(Debug, Clone, PartialEq)]
pub enum HdpError {
    /// The group structure was unusable (empty, ragged dimensions, …).
    InvalidGroups(String),
    /// Invalid configuration value.
    InvalidConfig(String),
    /// Propagated statistical failure (e.g. bad NIW hyperparameters).
    Stats(osr_stats::StatsError),
}

impl std::fmt::Display for HdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidGroups(msg) => write!(f, "invalid groups: {msg}"),
            Self::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            Self::Stats(e) => write!(f, "statistics failure: {e}"),
        }
    }
}

impl std::error::Error for HdpError {}

impl From<osr_stats::StatsError> for HdpError {
    fn from(e: osr_stats::StatsError) -> Self {
        Self::Stats(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HdpError>;
