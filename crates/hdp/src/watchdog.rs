//! The divergence watchdog: per-sweep health verdicts for the serving layer.
//!
//! A Gibbs sweep over hostile (but admissible) data can diverge numerically:
//! seating weights may all underflow, a rank-1 Cholesky downdate may break
//! positive-definiteness past the jitter ladder, a resampled concentration
//! or the joint log-likelihood may leave the finite range. The deep
//! numerical code never panics on these — it poisons the thread-local
//! [`osr_stats::divergence`] flag and substitutes a structurally valid
//! fallback — and the checked sweep entry points ([`crate::Hdp::sweep_checked`],
//! [`crate::BatchSession::sweep_checked`]) turn the flag plus a post-sweep
//! state audit into a typed [`Divergence`] verdict. The serving layer treats
//! a divergent sweep as a failed attempt: retry with a re-derived seed, or
//! degrade to frozen inference.

use crate::state::HdpState;

/// Why the watchdog declared a sweep divergent.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// The joint log marginal likelihood left the finite range.
    NonFiniteLikelihood,
    /// A resampled concentration parameter left the finite range.
    NonFiniteConcentration {
        /// Top-level concentration γ after the sweep.
        gamma: f64,
        /// Group-level concentration α₀ after the sweep.
        alpha: f64,
    },
    /// Deep numerical code poisoned the thread's divergence flag mid-sweep
    /// (non-finite seating weights, Cholesky failure past the jitter ladder).
    Numerical(String),
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFiniteLikelihood => write!(f, "joint log-likelihood is not finite"),
            Self::NonFiniteConcentration { gamma, alpha } => {
                write!(f, "concentration left the finite range (gamma = {gamma}, alpha = {alpha})")
            }
            Self::Numerical(msg) => write!(f, "numerical divergence: {msg}"),
        }
    }
}

impl std::error::Error for Divergence {}

/// Post-sweep health check: consume the thread's poison flag, then audit the
/// state's concentrations and the joint log-likelihood for finiteness. The
/// likelihood is supplied by the caller — the traced sweep paths already
/// compute it for the [`crate::SweepTrace`], so the audit reuses that value
/// instead of summing the dish marginals a second time.
pub(crate) fn check_health_with_ll(
    state: &HdpState,
    joint_log_likelihood: f64,
) -> Result<(), Divergence> {
    if let Some(reason) = osr_stats::divergence::take() {
        return Err(Divergence::Numerical(reason));
    }
    if !state.gamma.is_finite() || !state.alpha.is_finite() {
        return Err(Divergence::NonFiniteConcentration { gamma: state.gamma, alpha: state.alpha });
    }
    if !joint_log_likelihood.is_finite() {
        return Err(Divergence::NonFiniteLikelihood);
    }
    Ok(())
}
