//! The collapsed Chinese-Restaurant-Franchise Gibbs sampler.
//!
//! One sweep resamples, in order:
//! 1. every table assignment `t_ji` (Eq. 7 of the paper),
//! 2. every dish assignment `k_jt` (Eq. 8),
//! 3. both concentration parameters under their Gamma priors (§4.1.2).
//!
//! All component parameters φ are integrated out through the conjugate NIW
//! base measure, so the only state is the seating arrangement plus O(d²)
//! sufficient statistics per dish.

use rand::Rng;

use osr_stats::special::log_sum_exp;
use osr_stats::{sampling, NiwParams, NiwPosterior};

use crate::concentration::{resample_alpha, resample_gamma};
use crate::state::{DishId, DishSummary, FranchiseState, GroupSummary, HdpConfig, Table};
use crate::{HdpError, Result};

/// A Hierarchical Dirichlet Process mixture over a fixed set of groups.
#[derive(Debug, Clone)]
pub struct Hdp {
    state: FranchiseState,
    config: HdpConfig,
    /// Cached prior-state posterior for `p(x)` under H (new tables/dishes).
    prior_post: NiwPosterior,
    initialized: bool,
}

impl Hdp {
    /// Build a sampler over `groups` (each group a set of `d`-dimensional
    /// observations) with base measure `params`.
    ///
    /// # Errors
    /// Rejects empty group lists, empty groups, dimension mismatches and
    /// invalid configuration.
    pub fn new(params: NiwParams, config: HdpConfig, groups: Vec<Vec<Vec<f64>>>) -> Result<Self> {
        config.validate()?;
        if groups.is_empty() {
            return Err(HdpError::InvalidGroups("no groups".into()));
        }
        let d = params.dim();
        for (j, g) in groups.iter().enumerate() {
            if g.is_empty() {
                return Err(HdpError::InvalidGroups(format!("group {j} is empty")));
            }
            if let Some(bad) = g.iter().find(|x| x.len() != d) {
                return Err(HdpError::InvalidGroups(format!(
                    "group {j} has a point of dimension {} (expected {d})",
                    bad.len()
                )));
            }
            if g.iter().any(|x| !osr_linalg::vector::all_finite(x)) {
                return Err(HdpError::InvalidGroups(format!(
                    "group {j} contains non-finite values"
                )));
            }
        }
        let assignment = groups.iter().map(|g| vec![usize::MAX; g.len()]).collect();
        let n_groups = groups.len();
        let prior_post = NiwPosterior::from_prior(&params);
        // Initialize the concentrations at their prior means.
        let gamma = config.gamma_prior.0 / config.gamma_prior.1;
        let alpha = config.alpha_prior.0 / config.alpha_prior.1;
        Ok(Self {
            state: FranchiseState {
                params,
                groups,
                assignment,
                tables: vec![Vec::new(); n_groups],
                dishes: Vec::new(),
                gamma,
                alpha,
            },
            config,
            prior_post,
            initialized: false,
        })
    }

    /// Run the configured number of Gibbs sweeps (initializing with a
    /// sequential CRF pass first).
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.ensure_initialized(rng);
        for _ in 0..self.config.iterations {
            self.sweep(rng);
        }
    }

    /// One full Gibbs sweep (tables, then dishes, then concentrations).
    pub fn sweep<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.ensure_initialized(rng);
        for j in 0..self.state.groups.len() {
            for i in 0..self.state.groups[j].len() {
                self.sample_table_for_item(j, i, rng);
            }
        }
        self.resample_dishes(rng);
        if self.config.resample_concentrations {
            self.resample_concentrations(rng);
        }
    }

    fn ensure_initialized<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for j in 0..self.state.groups.len() {
            for i in 0..self.state.groups[j].len() {
                self.sample_table_for_item(j, i, rng);
            }
        }
    }

    /// Resample `t_ji` (Eq. 7): seat item `i` of group `j` at an existing
    /// table with probability ∝ `n_jt · f_k(x)` or at a new table with
    /// probability ∝ `α₀ · p(x)`, where `p(x)` marginalizes the new table's
    /// dish over the global menu.
    fn sample_table_for_item<R: Rng + ?Sized>(&mut self, j: usize, i: usize, rng: &mut R) {
        self.unseat(j, i);
        let x = std::mem::take(&mut self.state.groups[j][i]);

        // Predictive of x under every live dish, and under the prior.
        let dish_pred: Vec<(DishId, f64)> = self
            .state
            .live_dishes()
            .map(|(id, d)| (id, d.posterior.predictive_logpdf(&x)))
            .collect();
        let prior_pred = self.prior_post.predictive_logpdf(&x);

        // New-table marginal: Σ_k m_k/(M+γ) f_k + γ/(M+γ) f_0.
        let total_tables = self.state.total_tables() as f64;
        let gamma = self.state.gamma;
        let mut menu_lw: Vec<f64> = dish_pred
            .iter()
            .map(|&(id, lp)| (self.state.dish(id).n_tables as f64).ln() + lp)
            .collect();
        menu_lw.push(gamma.ln() + prior_pred);
        let new_table_marginal = log_sum_exp(&menu_lw) - (total_tables + gamma).ln();

        // Candidate log-weights: one per existing table, then the new table.
        let tables = &self.state.tables[j];
        let mut lw: Vec<f64> = Vec::with_capacity(tables.len() + 1);
        for table in tables {
            let pred = dish_pred
                .iter()
                .find(|&&(id, _)| id == table.dish)
                .map(|&(_, lp)| lp)
                .expect("table serves a live dish");
            lw.push((table.members.len() as f64).ln() + pred);
        }
        lw.push(self.state.alpha.ln() + new_table_marginal);

        let choice = sampling::categorical_log(rng, &lw);
        if choice < tables.len() {
            // Existing table.
            let dish = self.state.tables[j][choice].dish;
            self.state.dish_mut(dish).posterior.add(&x);
            self.state.tables[j][choice].members.push(i);
            self.state.assignment[j][i] = choice;
        } else {
            // New table: draw its dish from the menu posterior (same
            // mixture that formed the marginal above).
            let menu_choice = sampling::categorical_log(rng, &menu_lw);
            let dish = if menu_choice < dish_pred.len() {
                dish_pred[menu_choice].0
            } else {
                self.state.new_dish()
            };
            self.state.dish_mut(dish).posterior.add(&x);
            self.state.dish_mut(dish).n_tables += 1;
            self.state.tables[j].push(Table { dish, members: vec![i] });
            self.state.assignment[j][i] = self.state.tables[j].len() - 1;
        }
        self.state.groups[j][i] = x;
    }

    /// Remove item `i` of group `j` from its table (no-op when unseated),
    /// deleting the table if it empties and retiring orphaned dishes.
    fn unseat(&mut self, j: usize, i: usize) {
        let ti = self.state.assignment[j][i];
        if ti == usize::MAX {
            return;
        }
        self.state.assignment[j][i] = usize::MAX;
        let dish = self.state.tables[j][ti].dish;
        {
            let x = std::mem::take(&mut self.state.groups[j][i]);
            self.state.dish_mut(dish).posterior.remove(&x);
            self.state.groups[j][i] = x;
        }
        let table = &mut self.state.tables[j][ti];
        let pos = table
            .members
            .iter()
            .position(|&m| m == i)
            .expect("item must be a member of its assigned table");
        table.members.swap_remove(pos);
        if table.members.is_empty() {
            self.state.tables[j].swap_remove(ti);
            // The table that was last is now at ti: fix its members' links.
            if ti < self.state.tables[j].len() {
                let moved_members = self.state.tables[j][ti].members.clone();
                for m in moved_members {
                    self.state.assignment[j][m] = ti;
                }
            }
            let d = self.state.dish_mut(dish);
            d.n_tables -= 1;
            self.state.retire_if_empty(dish);
        }
    }

    /// Resample `k_jt` for every table (Eq. 8): an existing dish with
    /// probability ∝ `m_k · ∏ f_k(x_table)` or a new one with probability
    /// ∝ `γ · ∏ p(x_table)`.
    fn resample_dishes<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for j in 0..self.state.tables.len() {
            for ti in 0..self.state.tables[j].len() {
                self.resample_dish_of_table(j, ti, rng);
            }
        }
    }

    fn resample_dish_of_table<R: Rng + ?Sized>(&mut self, j: usize, ti: usize, rng: &mut R) {
        let old_dish = self.state.tables[j][ti].dish;
        let members = self.state.tables[j][ti].members.clone();
        // Owned copy of the block so scoring can mutably borrow the dishes.
        let block: Vec<Vec<f64>> =
            members.iter().map(|&m| self.state.groups[j][m].clone()).collect();

        // Detach the block from its dish.
        {
            let FranchiseState { groups, dishes, .. } = &mut self.state;
            let dish = dishes[old_dish].as_mut().expect("table serves a live dish");
            for &m in &members {
                dish.posterior.remove(&groups[j][m]);
            }
            dish.n_tables -= 1;
        }
        self.state.retire_if_empty(old_dish);

        // Score every live dish plus a fresh one.
        let block_refs: Vec<&[f64]> = block.iter().map(Vec::as_slice).collect();
        let live_ids: Vec<DishId> = self.state.live_dishes().map(|(id, _)| id).collect();
        let mut lw = Vec::with_capacity(live_ids.len() + 1);
        for &id in &live_ids {
            let dish = self.state.dishes[id].as_mut().expect("live id");
            let lp = dish.posterior.block_predictive_logpdf(&block_refs);
            lw.push((dish.n_tables as f64).ln() + lp);
        }
        {
            let mut scratch = self.prior_post.clone();
            let lp = scratch.block_predictive_logpdf(&block_refs);
            lw.push(self.state.gamma.ln() + lp);
        }

        let choice = sampling::categorical_log(rng, &lw);
        let new_dish =
            if choice < live_ids.len() { live_ids[choice] } else { self.state.new_dish() };
        {
            let FranchiseState { groups, dishes, .. } = &mut self.state;
            let dish = dishes[new_dish].as_mut().expect("chosen dish is live");
            for &m in &members {
                dish.posterior.add(&groups[j][m]);
            }
            dish.n_tables += 1;
        }
        self.state.tables[j][ti].dish = new_dish;
    }

    fn resample_concentrations<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let total_tables = self.state.total_tables();
        let k = self.state.n_dishes();
        if total_tables == 0 || k == 0 {
            return;
        }
        self.state.gamma =
            resample_gamma(rng, self.state.gamma, k, total_tables, self.config.gamma_prior);
        let group_sizes: Vec<usize> = self.state.groups.iter().map(Vec::len).collect();
        self.state.alpha = resample_alpha(
            rng,
            self.state.alpha,
            total_tables,
            &group_sizes,
            self.config.alpha_prior,
        );
    }

    // ------------------------------------------------------------------
    // Read-only queries
    // ------------------------------------------------------------------

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.state.groups.len()
    }

    /// Number of live dishes (global mixture components / subclasses).
    pub fn n_dishes(&self) -> usize {
        self.state.n_dishes()
    }

    /// Total number of tables across all groups (`m_··`).
    pub fn total_tables(&self) -> usize {
        self.state.total_tables()
    }

    /// Current top-level concentration γ.
    pub fn gamma(&self) -> f64 {
        self.state.gamma
    }

    /// Current group-level concentration α₀.
    pub fn alpha(&self) -> f64 {
        self.state.alpha
    }

    /// Dish currently explaining item `i` of group `j`.
    ///
    /// # Panics
    /// Panics before the first sweep/run or on out-of-range indices.
    pub fn dish_of(&self, group: usize, item: usize) -> DishId {
        let ti = self.state.assignment[group][item];
        assert!(ti != usize::MAX, "dish_of: sampler has not run yet");
        self.state.tables[group][ti].dish
    }

    /// Per-dish item counts within one group, sorted by descending count.
    pub fn group_summary(&self, group: usize) -> GroupSummary {
        let mut counts: std::collections::BTreeMap<DishId, usize> = Default::default();
        for table in &self.state.tables[group] {
            *counts.entry(table.dish).or_insert(0) += table.members.len();
        }
        let mut dish_counts: Vec<(DishId, usize)> = counts.into_iter().collect();
        dish_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        GroupSummary {
            group,
            n_items: self.state.groups[group].len(),
            n_tables: self.state.tables[group].len(),
            dish_counts,
        }
    }

    /// Summaries of every live dish, sorted by id.
    pub fn dish_summaries(&self) -> Vec<DishSummary> {
        self.state
            .live_dishes()
            .map(|(id, d)| DishSummary {
                id,
                n_tables: d.n_tables,
                n_items: d.posterior.count(),
                mean: d.posterior.mean().to_vec(),
            })
            .collect()
    }

    /// Posterior predictive log-density of a point under one dish.
    pub fn dish_predictive_logpdf(&self, dish: DishId, x: &[f64]) -> f64 {
        self.state.dish(dish).posterior.predictive_logpdf(x)
    }

    /// Joint log marginal likelihood of all data given the current seating
    /// (sum of per-dish closed-form marginals) — a convergence diagnostic.
    pub fn joint_log_likelihood(&self) -> f64 {
        self.state
            .live_dishes()
            .map(|(_, d)| d.posterior.log_marginal(&self.state.params))
            .sum()
    }

    /// Exhaustive state audit (tests run this after every sweep).
    ///
    /// # Panics
    /// Panics on any bookkeeping inconsistency.
    pub fn check_invariants(&self) {
        if self.initialized {
            self.state.check_invariants();
        }
    }

    /// The base-measure parameters.
    pub fn params(&self) -> &NiwParams {
        &self.state.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn niw(d: usize, psi_scale: f64) -> NiwParams {
        NiwParams::new(vec![0.0; d], 1.0, d as f64 + 3.0, Matrix::scaled_identity(d, psi_scale))
            .unwrap()
    }

    fn blob(rng: &mut StdRng, center: &[f64], n: usize, std: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                center
                    .iter()
                    .map(|&c| c + std * osr_stats::sampling::standard_normal(rng))
                    .collect()
            })
            .collect()
    }

    /// Small fixed-concentration config for fast, predictable tests.
    fn test_config(iters: usize) -> HdpConfig {
        HdpConfig {
            gamma_prior: (2.0, 1.0),
            alpha_prior: (2.0, 1.0),
            resample_concentrations: true,
            iterations: iters,
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let p = niw(2, 1.0);
        assert!(Hdp::new(p.clone(), test_config(1), vec![]).is_err());
        assert!(Hdp::new(p.clone(), test_config(1), vec![vec![]]).is_err());
        assert!(Hdp::new(p.clone(), test_config(1), vec![vec![vec![0.0]]]).is_err());
        assert!(
            Hdp::new(p.clone(), test_config(1), vec![vec![vec![f64::NAN, 0.0]]]).is_err()
        );
        let mut cfg = test_config(1);
        cfg.iterations = 0;
        assert!(Hdp::new(p, cfg, vec![vec![vec![0.0, 0.0]]]).is_err());
    }

    #[test]
    fn invariants_hold_across_sweeps() {
        let mut rng = StdRng::seed_from_u64(1);
        let g1 = blob(&mut rng, &[0.0, 0.0], 30, 0.5);
        let g2 = blob(&mut rng, &[5.0, 5.0], 30, 0.5);
        let mut hdp = Hdp::new(niw(2, 1.0), test_config(1), vec![g1, g2]).unwrap();
        for _ in 0..8 {
            hdp.sweep(&mut rng);
            hdp.check_invariants();
        }
    }

    #[test]
    fn separated_clusters_get_distinct_dishes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut group = blob(&mut rng, &[-8.0, 0.0], 40, 0.5);
        group.extend(blob(&mut rng, &[8.0, 0.0], 40, 0.5));
        let mut hdp = Hdp::new(niw(2, 1.0), test_config(10), vec![group]).unwrap();
        hdp.run(&mut rng);
        hdp.check_invariants();
        // The two spatial clusters must not share a dish.
        let left: std::collections::HashSet<_> = (0..40).map(|i| hdp.dish_of(0, i)).collect();
        let right: std::collections::HashSet<_> = (40..80).map(|i| hdp.dish_of(0, i)).collect();
        assert!(left.is_disjoint(&right), "left {left:?} overlaps right {right:?}");
    }

    #[test]
    fn same_cluster_across_groups_shares_a_dish() {
        let mut rng = StdRng::seed_from_u64(3);
        // Two groups drawn from the SAME tight cluster: co-clustering should
        // put the bulk of both on one shared dish.
        let g1 = blob(&mut rng, &[3.0, -2.0], 50, 0.4);
        let g2 = blob(&mut rng, &[3.0, -2.0], 50, 0.4);
        let mut hdp = Hdp::new(niw(2, 1.0), test_config(10), vec![g1, g2]).unwrap();
        hdp.run(&mut rng);
        let top1 = hdp.group_summary(0).dish_counts[0].0;
        let top2 = hdp.group_summary(1).dish_counts[0].0;
        assert_eq!(top1, top2, "dominant dishes should coincide across groups");
    }

    #[test]
    fn distinct_groups_do_not_share_with_large_gamma() {
        let mut rng = StdRng::seed_from_u64(4);
        let g1 = blob(&mut rng, &[-6.0, 0.0], 40, 0.5);
        let g2 = blob(&mut rng, &[6.0, 0.0], 40, 0.5);
        // Paper-style large γ.
        let cfg = HdpConfig { gamma_prior: (100.0, 1.0), ..test_config(10) };
        let mut hdp = Hdp::new(niw(2, 1.0), cfg, vec![g1, g2]).unwrap();
        hdp.run(&mut rng);
        let d1: std::collections::HashSet<_> =
            hdp.group_summary(0).dish_counts.iter().map(|&(d, _)| d).collect();
        let d2: std::collections::HashSet<_> =
            hdp.group_summary(1).dish_counts.iter().map(|&(d, _)| d).collect();
        assert!(d1.is_disjoint(&d2), "distinct classes should use distinct dishes");
    }

    #[test]
    fn dish_summaries_are_consistent_with_group_counts() {
        let mut rng = StdRng::seed_from_u64(5);
        let g1 = blob(&mut rng, &[0.0, 0.0], 25, 0.6);
        let g2 = blob(&mut rng, &[4.0, 4.0], 25, 0.6);
        let mut hdp = Hdp::new(niw(2, 1.0), test_config(5), vec![g1, g2]).unwrap();
        hdp.run(&mut rng);
        let total_from_dishes: usize = hdp.dish_summaries().iter().map(|d| d.n_items).sum();
        assert_eq!(total_from_dishes, 50);
        let total_from_groups: usize = (0..2)
            .map(|j| hdp.group_summary(j).dish_counts.iter().map(|&(_, c)| c).sum::<usize>())
            .sum();
        assert_eq!(total_from_groups, 50);
    }

    #[test]
    fn sampler_is_deterministic_under_seed() {
        let data = {
            let mut rng = StdRng::seed_from_u64(6);
            vec![blob(&mut rng, &[0.0, 0.0], 20, 1.0), blob(&mut rng, &[3.0, 3.0], 20, 1.0)]
        };
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut hdp = Hdp::new(niw(2, 1.0), test_config(3), data.clone()).unwrap();
            hdp.run(&mut rng);
            (0..2).flat_map(|j| (0..20).map(move |i| (j, i)))
                .map(|(j, i)| hdp.dish_of(j, i))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn joint_log_likelihood_is_finite_and_improves_with_structure() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut group = blob(&mut rng, &[-10.0, 0.0], 30, 0.3);
        group.extend(blob(&mut rng, &[10.0, 0.0], 30, 0.3));
        let mut hdp = Hdp::new(niw(2, 1.0), test_config(1), vec![group]).unwrap();
        hdp.sweep(&mut rng);
        let early = hdp.joint_log_likelihood();
        assert!(early.is_finite());
        for _ in 0..10 {
            hdp.sweep(&mut rng);
        }
        let late = hdp.joint_log_likelihood();
        assert!(late.is_finite());
        // Gibbs is stochastic but on this trivially separable problem ten
        // sweeps should not make things dramatically worse.
        assert!(late > early - 50.0, "likelihood collapsed: {early} -> {late}");
    }

    #[test]
    fn concentrations_stay_positive() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = blob(&mut rng, &[0.0, 0.0], 40, 1.0);
        let mut hdp = Hdp::new(niw(2, 1.0), test_config(5), vec![g]).unwrap();
        hdp.run(&mut rng);
        assert!(hdp.gamma() > 0.0 && hdp.gamma().is_finite());
        assert!(hdp.alpha() > 0.0 && hdp.alpha().is_finite());
    }

    #[test]
    #[should_panic(expected = "has not run yet")]
    fn dish_of_requires_a_run() {
        let hdp =
            Hdp::new(niw(2, 1.0), test_config(1), vec![vec![vec![0.0, 0.0]]]).unwrap();
        let _ = hdp.dish_of(0, 0);
    }

    #[test]
    fn single_group_single_point() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut hdp =
            Hdp::new(niw(2, 1.0), test_config(2), vec![vec![vec![1.0, -1.0]]]).unwrap();
        hdp.run(&mut rng);
        hdp.check_invariants();
        assert_eq!(hdp.n_dishes(), 1);
        assert_eq!(hdp.total_tables(), 1);
    }
}
