//! The collapsed Chinese-Restaurant-Franchise Gibbs sampler.
//!
//! One sweep resamples, in order:
//! 1. every table assignment `t_ji` (Eq. 7 of the paper),
//! 2. every dish assignment `k_jt` (Eq. 8),
//! 3. both concentration parameters under their Gamma priors (§4.1.2).
//!
//! All component parameters φ are integrated out through the conjugate NIW
//! base measure, so the only state is the seating arrangement plus O(d²)
//! sufficient statistics per dish. The moves themselves live in the seating
//! engine (`engine.rs`, `impl HdpState`); this type owns the state, drives
//! full sweeps over every group, and can checkpoint a converged arrangement
//! into a [`PosteriorSnapshot`] for warm-start serving.

use std::sync::Arc;

use rand::Rng;

use osr_stats::{NiwParams, NiwPosterior};

use crate::session::PosteriorSnapshot;
use crate::state::{DishId, DishSummary, GroupSummary, HdpConfig, HdpState};
use crate::trace::{self, SweepTrace};
use crate::{HdpError, Result};

/// A Hierarchical Dirichlet Process mixture over a fixed set of groups.
#[derive(Debug, Clone)]
pub struct Hdp {
    state: HdpState,
    config: HdpConfig,
    /// Cached prior-state posterior for `p(x)` under H (new tables/dishes).
    prior_post: NiwPosterior,
    initialized: bool,
    /// Sweeps completed by this sampler (the `sweep` index of traces).
    sweeps_done: usize,
    /// Wall-time of the most recent sweep, nanoseconds.
    last_sweep_wall_ns: u64,
    /// Seating decisions taken in the most recent sweep.
    last_sweep_moves: u64,
}

/// Validate one group against the base measure's dimension; shared between
/// [`Hdp::new`] and [`PosteriorSnapshot::session`](crate::PosteriorSnapshot::session).
pub(crate) fn validate_group(j: usize, group: &[Vec<f64>], d: usize) -> Result<()> {
    if group.is_empty() {
        return Err(HdpError::InvalidGroups(format!("group {j} is empty")));
    }
    if let Some(bad) = group.iter().find(|x| x.len() != d) {
        return Err(HdpError::InvalidGroups(format!(
            "group {j} has a point of dimension {} (expected {d})",
            bad.len()
        )));
    }
    if group.iter().any(|x| !osr_linalg::vector::all_finite(x)) {
        return Err(HdpError::InvalidGroups(format!("group {j} contains non-finite values")));
    }
    Ok(())
}

impl Hdp {
    /// Build a sampler over `groups` (each group a set of `d`-dimensional
    /// observations) with base measure `params`.
    ///
    /// # Errors
    /// Rejects empty group lists, empty groups, dimension mismatches and
    /// invalid configuration.
    pub fn new(params: NiwParams, config: HdpConfig, groups: Vec<Vec<Vec<f64>>>) -> Result<Self> {
        config.validate()?;
        if groups.is_empty() {
            return Err(HdpError::InvalidGroups("no groups".into()));
        }
        let d = params.dim();
        for (j, g) in groups.iter().enumerate() {
            validate_group(j, g, d)?;
        }
        let assignment = groups.iter().map(|g| vec![usize::MAX; g.len()]).collect();
        let n_groups = groups.len();
        let prior_post = NiwPosterior::from_prior(&params);
        // Initialize the concentrations at their prior means.
        let gamma = config.gamma_prior.0 / config.gamma_prior.1;
        let alpha = config.alpha_prior.0 / config.alpha_prior.1;
        let bank = osr_stats::DishBank::new(&params);
        Ok(Self {
            state: HdpState {
                params,
                groups: groups.into_iter().map(Arc::new).collect(),
                assignment,
                tables: vec![Vec::new(); n_groups],
                dishes: Vec::new(),
                bank,
                gamma,
                alpha,
                seat_moves: 0,
                scratch: Default::default(),
            },
            config,
            prior_post,
            initialized: false,
            sweeps_done: 0,
            last_sweep_wall_ns: 0,
            last_sweep_moves: 0,
        })
    }

    /// Rebuild a sampler from checkpointed parts (see
    /// [`PosteriorSnapshot::restore`]). The state is assumed fully seated.
    pub(crate) fn from_parts(
        state: HdpState,
        config: HdpConfig,
        prior_post: NiwPosterior,
    ) -> Self {
        Self {
            state,
            config,
            prior_post,
            initialized: true,
            sweeps_done: 0,
            last_sweep_wall_ns: 0,
            last_sweep_moves: 0,
        }
    }

    /// Run the configured number of Gibbs sweeps (initializing with a
    /// sequential CRF pass first).
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.ensure_initialized(rng);
        for _ in 0..self.config.iterations {
            self.sweep(rng);
        }
    }

    /// One full Gibbs sweep (tables, then dishes, then concentrations).
    pub fn sweep<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let started = std::time::Instant::now();
        let moves_before = self.state.seat_moves;
        self.ensure_initialized(rng);
        for j in 0..self.state.groups.len() {
            self.state.seat_group_items(j, rng);
        }
        for j in 0..self.state.groups.len() {
            self.state.resample_group_dishes(j, rng);
        }
        if self.config.resample_concentrations {
            self.state.resample_concentrations(&self.config, rng);
        }
        self.sweeps_done += 1;
        self.last_sweep_wall_ns = started.elapsed().as_nanos() as u64;
        self.last_sweep_moves = self.state.seat_moves - moves_before;
        trace::record_sweep(&self.state, self.last_sweep_wall_ns, self.last_sweep_moves);
    }

    /// [`Self::sweep`] plus a [`SweepTrace`] of the post-sweep state.
    /// Calling this `iterations` times consumes the exact RNG stream of
    /// [`Self::run`] (initialization happens inside the first sweep either
    /// way), so a traced fit reproduces an untraced one bit for bit.
    pub fn sweep_traced<R: Rng + ?Sized>(&mut self, rng: &mut R) -> SweepTrace {
        self.sweep(rng);
        self.build_trace(self.state.joint_log_likelihood())
    }

    /// [`Self::sweep`] under the divergence watchdog: runs one sweep, then
    /// consumes the thread's poison flag and audits concentrations and the
    /// joint log-likelihood. Calling this `iterations` times consumes the
    /// exact RNG stream of [`Self::run`] (initialization happens inside the
    /// first sweep either way). An `Err` means the sampler state can no
    /// longer be trusted and should be discarded.
    pub fn sweep_checked<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> std::result::Result<(), crate::Divergence> {
        self.sweep_checked_traced(rng).map(|_| ())
    }

    /// [`Self::sweep_checked`], returning the [`SweepTrace`] on a healthy
    /// sweep. The trace's log-likelihood doubles as the watchdog's
    /// finiteness audit, so tracing adds no extra likelihood evaluation.
    pub fn sweep_checked_traced<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> std::result::Result<SweepTrace, crate::Divergence> {
        #[cfg(feature = "fault-inject")]
        if osr_stats::faults::hit(osr_stats::faults::sites::ENGINE_SWEEP)
            == Some(osr_stats::faults::Fault::Diverge)
        {
            osr_stats::divergence::poison("injected: engine sweep divergence");
        }
        self.sweep(rng);
        let trace = self.build_trace(self.state.joint_log_likelihood());
        crate::watchdog::check_health_with_ll(&self.state, trace.log_likelihood)?;
        Ok(trace)
    }

    fn build_trace(&self, log_likelihood: f64) -> SweepTrace {
        trace::build_trace(
            &self.state,
            self.sweeps_done - 1,
            self.last_sweep_wall_ns,
            self.last_sweep_moves,
            log_likelihood,
        )
    }

    fn ensure_initialized<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for j in 0..self.state.groups.len() {
            self.state.seat_group_items(j, rng);
        }
    }

    /// Checkpoint the current posterior seating — tables, dishes with their
    /// NIW sufficient statistics, and concentrations — into an immutable
    /// [`PosteriorSnapshot`] that warm-start batch sessions clone from.
    /// Group observations are shared with the snapshot, not copied.
    ///
    /// # Panics
    /// Panics before the first `run`/`sweep`: an unseated arrangement is not
    /// a posterior state worth freezing.
    pub fn snapshot(&self) -> PosteriorSnapshot {
        assert!(self.initialized, "snapshot: sampler has not run yet");
        PosteriorSnapshot::from_parts(self.state.clone(), self.config, self.prior_post.clone())
    }

    // ------------------------------------------------------------------
    // Read-only queries
    // ------------------------------------------------------------------

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.state.groups.len()
    }

    /// Number of live dishes (global mixture components / subclasses).
    pub fn n_dishes(&self) -> usize {
        self.state.n_dishes()
    }

    /// Total number of tables across all groups (`m_··`).
    pub fn total_tables(&self) -> usize {
        self.state.total_tables()
    }

    /// Current top-level concentration γ.
    pub fn gamma(&self) -> f64 {
        self.state.gamma
    }

    /// Current group-level concentration α₀.
    pub fn alpha(&self) -> f64 {
        self.state.alpha
    }

    /// Dish currently explaining item `i` of group `j`.
    ///
    /// # Panics
    /// Panics before the first sweep/run or on out-of-range indices.
    pub fn dish_of(&self, group: usize, item: usize) -> DishId {
        self.state.dish_of(group, item)
    }

    /// Per-dish item counts within one group, sorted by descending count.
    pub fn group_summary(&self, group: usize) -> GroupSummary {
        self.state.group_summary(group)
    }

    /// Summaries of every live dish, sorted by id.
    pub fn dish_summaries(&self) -> Vec<DishSummary> {
        self.state.dish_summaries()
    }

    /// Posterior predictive log-density of a point under one dish.
    pub fn dish_predictive_logpdf(&self, dish: DishId, x: &[f64]) -> f64 {
        self.state.bank.predictive_one(self.state.dish(dish).slot, x)
    }

    /// Joint log marginal likelihood of all data given the current seating
    /// (sum of per-dish closed-form marginals) — a convergence diagnostic.
    pub fn joint_log_likelihood(&self) -> f64 {
        self.state.joint_log_likelihood()
    }

    /// Exhaustive state audit (tests run this after every sweep).
    ///
    /// # Panics
    /// Panics on any bookkeeping inconsistency.
    pub fn check_invariants(&self) {
        if self.initialized {
            self.state.check_invariants();
        }
    }

    /// The base-measure parameters.
    pub fn params(&self) -> &NiwParams {
        &self.state.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn niw(d: usize, psi_scale: f64) -> NiwParams {
        NiwParams::new(vec![0.0; d], 1.0, d as f64 + 3.0, Matrix::scaled_identity(d, psi_scale))
            .unwrap()
    }

    fn blob(rng: &mut StdRng, center: &[f64], n: usize, std: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                center
                    .iter()
                    .map(|&c| c + std * osr_stats::sampling::standard_normal(rng))
                    .collect()
            })
            .collect()
    }

    /// Small fixed-concentration config for fast, predictable tests.
    fn test_config(iters: usize) -> HdpConfig {
        HdpConfig {
            gamma_prior: (2.0, 1.0),
            alpha_prior: (2.0, 1.0),
            resample_concentrations: true,
            iterations: iters,
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let p = niw(2, 1.0);
        assert!(Hdp::new(p.clone(), test_config(1), vec![]).is_err());
        assert!(Hdp::new(p.clone(), test_config(1), vec![vec![]]).is_err());
        assert!(Hdp::new(p.clone(), test_config(1), vec![vec![vec![0.0]]]).is_err());
        assert!(
            Hdp::new(p.clone(), test_config(1), vec![vec![vec![f64::NAN, 0.0]]]).is_err()
        );
        let mut cfg = test_config(1);
        cfg.iterations = 0;
        assert!(Hdp::new(p, cfg, vec![vec![vec![0.0, 0.0]]]).is_err());
    }

    #[test]
    fn invariants_hold_across_sweeps() {
        let mut rng = StdRng::seed_from_u64(1);
        let g1 = blob(&mut rng, &[0.0, 0.0], 30, 0.5);
        let g2 = blob(&mut rng, &[5.0, 5.0], 30, 0.5);
        let mut hdp = Hdp::new(niw(2, 1.0), test_config(1), vec![g1, g2]).unwrap();
        for _ in 0..8 {
            hdp.sweep(&mut rng);
            hdp.check_invariants();
        }
    }

    #[test]
    fn separated_clusters_get_distinct_dishes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut group = blob(&mut rng, &[-8.0, 0.0], 40, 0.5);
        group.extend(blob(&mut rng, &[8.0, 0.0], 40, 0.5));
        let mut hdp = Hdp::new(niw(2, 1.0), test_config(10), vec![group]).unwrap();
        hdp.run(&mut rng);
        hdp.check_invariants();
        // The two spatial clusters must not share a dish.
        let left: std::collections::HashSet<_> = (0..40).map(|i| hdp.dish_of(0, i)).collect();
        let right: std::collections::HashSet<_> = (40..80).map(|i| hdp.dish_of(0, i)).collect();
        assert!(left.is_disjoint(&right), "left {left:?} overlaps right {right:?}");
    }

    #[test]
    fn same_cluster_across_groups_shares_a_dish() {
        let mut rng = StdRng::seed_from_u64(3);
        // Two groups drawn from the SAME tight cluster: co-clustering should
        // put the bulk of both on one shared dish.
        let g1 = blob(&mut rng, &[3.0, -2.0], 50, 0.4);
        let g2 = blob(&mut rng, &[3.0, -2.0], 50, 0.4);
        let mut hdp = Hdp::new(niw(2, 1.0), test_config(10), vec![g1, g2]).unwrap();
        hdp.run(&mut rng);
        let top1 = hdp.group_summary(0).dish_counts[0].0;
        let top2 = hdp.group_summary(1).dish_counts[0].0;
        assert_eq!(top1, top2, "dominant dishes should coincide across groups");
    }

    #[test]
    fn distinct_groups_do_not_share_with_large_gamma() {
        let mut rng = StdRng::seed_from_u64(4);
        let g1 = blob(&mut rng, &[-6.0, 0.0], 40, 0.5);
        let g2 = blob(&mut rng, &[6.0, 0.0], 40, 0.5);
        // Paper-style large γ.
        let cfg = HdpConfig { gamma_prior: (100.0, 1.0), ..test_config(10) };
        let mut hdp = Hdp::new(niw(2, 1.0), cfg, vec![g1, g2]).unwrap();
        hdp.run(&mut rng);
        let d1: std::collections::HashSet<_> =
            hdp.group_summary(0).dish_counts.iter().map(|&(d, _)| d).collect();
        let d2: std::collections::HashSet<_> =
            hdp.group_summary(1).dish_counts.iter().map(|&(d, _)| d).collect();
        assert!(d1.is_disjoint(&d2), "distinct classes should use distinct dishes");
    }

    #[test]
    fn dish_summaries_are_consistent_with_group_counts() {
        let mut rng = StdRng::seed_from_u64(5);
        let g1 = blob(&mut rng, &[0.0, 0.0], 25, 0.6);
        let g2 = blob(&mut rng, &[4.0, 4.0], 25, 0.6);
        let mut hdp = Hdp::new(niw(2, 1.0), test_config(5), vec![g1, g2]).unwrap();
        hdp.run(&mut rng);
        let total_from_dishes: usize = hdp.dish_summaries().iter().map(|d| d.n_items).sum();
        assert_eq!(total_from_dishes, 50);
        let total_from_groups: usize = (0..2)
            .map(|j| hdp.group_summary(j).dish_counts.iter().map(|&(_, c)| c).sum::<usize>())
            .sum();
        assert_eq!(total_from_groups, 50);
    }

    #[test]
    fn sampler_is_deterministic_under_seed() {
        let data = {
            let mut rng = StdRng::seed_from_u64(6);
            vec![blob(&mut rng, &[0.0, 0.0], 20, 1.0), blob(&mut rng, &[3.0, 3.0], 20, 1.0)]
        };
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut hdp = Hdp::new(niw(2, 1.0), test_config(3), data.clone()).unwrap();
            hdp.run(&mut rng);
            (0..2).flat_map(|j| (0..20).map(move |i| (j, i)))
                .map(|(j, i)| hdp.dish_of(j, i))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn joint_log_likelihood_is_finite_and_improves_with_structure() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut group = blob(&mut rng, &[-10.0, 0.0], 30, 0.3);
        group.extend(blob(&mut rng, &[10.0, 0.0], 30, 0.3));
        let mut hdp = Hdp::new(niw(2, 1.0), test_config(1), vec![group]).unwrap();
        hdp.sweep(&mut rng);
        let early = hdp.joint_log_likelihood();
        assert!(early.is_finite());
        for _ in 0..10 {
            hdp.sweep(&mut rng);
        }
        let late = hdp.joint_log_likelihood();
        assert!(late.is_finite());
        // Gibbs is stochastic but on this trivially separable problem ten
        // sweeps should not make things dramatically worse.
        assert!(late > early - 50.0, "likelihood collapsed: {early} -> {late}");
    }

    #[test]
    fn concentrations_stay_positive() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = blob(&mut rng, &[0.0, 0.0], 40, 1.0);
        let mut hdp = Hdp::new(niw(2, 1.0), test_config(5), vec![g]).unwrap();
        hdp.run(&mut rng);
        assert!(hdp.gamma() > 0.0 && hdp.gamma().is_finite());
        assert!(hdp.alpha() > 0.0 && hdp.alpha().is_finite());
    }

    #[test]
    #[should_panic(expected = "has not run yet")]
    fn dish_of_requires_a_run() {
        let hdp =
            Hdp::new(niw(2, 1.0), test_config(1), vec![vec![vec![0.0, 0.0]]]).unwrap();
        let _ = hdp.dish_of(0, 0);
    }

    #[test]
    #[should_panic(expected = "snapshot: sampler has not run yet")]
    fn snapshot_requires_a_run() {
        let hdp =
            Hdp::new(niw(2, 1.0), test_config(1), vec![vec![vec![0.0, 0.0]]]).unwrap();
        let _ = hdp.snapshot();
    }

    #[test]
    fn single_group_single_point() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut hdp =
            Hdp::new(niw(2, 1.0), test_config(2), vec![vec![vec![1.0, -1.0]]]).unwrap();
        hdp.run(&mut rng);
        hdp.check_invariants();
        assert_eq!(hdp.n_dishes(), 1);
        assert_eq!(hdp.total_tables(), 1);
    }
}
