//! `fault-site-registration`: every named fault-injection site must be
//! exercised by the fault-injection suite.
//!
//! PR 3 sprinkled the serving stack with named sites
//! (`crates/stats/src/faults.rs`, `mod sites`); each one exists to prove a
//! specific failure is survived, and a site nobody injects is a survival
//! claim nobody tests. The rule parses the `pub const NAME: &str = "..."`
//! registry and requires each site to appear in
//! `tests/fault_injection.rs` — either as `sites::NAME` or as its literal
//! string.

use crate::diagnostics::Diagnostic;
use crate::scanner::{find_matching_close, find_open_brace, find_word, ScannedFile};

/// One parsed site constant.
#[derive(Debug, PartialEq, Eq)]
pub struct Site {
    /// Constant name (e.g. `ADMISSION`).
    pub name: String,
    /// String value (e.g. `serving::admission`).
    pub value: String,
    /// 1-based line of the constant.
    pub line: usize,
}

/// Extract the `mod sites` constants from the scanned `faults.rs`.
pub fn parse_sites(file: &ScannedFile) -> Vec<Site> {
    let lines = &file.lines;
    let Some(mod_line) = lines.iter().position(|l| {
        l.code.contains("mod sites") && !l.in_test
    }) else {
        return Vec::new();
    };
    let Some((open_line, open_col)) = find_open_brace(lines, mod_line) else {
        return Vec::new();
    };
    let end =
        find_matching_close(lines, open_line, open_col).unwrap_or(lines.len().saturating_sub(1));
    let raw_lines: Vec<&str> = file.raw.lines().collect();
    let mut sites = Vec::new();
    for k in open_line..=end {
        let code = &lines[k].code;
        let Some(name) = code
            .find("const ")
            .and_then(|at| code.get(at + "const ".len()..))
            .and_then(|rest| rest.split(':').next())
            .map(str::trim)
            .filter(|n| !n.is_empty() && n.chars().all(|c| c.is_alphanumeric() || c == '_'))
        else {
            continue;
        };
        // The value lives in the raw line (the scanner blanks strings).
        let Some(value) = raw_lines.get(k).and_then(|raw| {
            let from = raw.find('"')? + 1;
            let len = raw.get(from..)?.find('"')?;
            raw.get(from..from + len)
        }) else {
            continue;
        };
        sites.push(Site { name: name.to_string(), value: value.to_string(), line: k + 1 });
    }
    sites
}

/// Check every site of `faults_file` against the raw text of the
/// fault-injection suite (`None` = the suite file is missing entirely).
pub fn check(
    faults_path: &str,
    faults_file: &ScannedFile,
    registry_path: &str,
    registry_raw: Option<&str>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for site in parse_sites(faults_file) {
        let registered = registry_raw.is_some_and(|raw| {
            find_word(raw, &format!("sites::{}", site.name)).is_some()
                || raw.contains(&format!("\"{}\"", site.value))
        });
        if !registered {
            out.push(Diagnostic {
                rule: "fault-site-registration".to_string(),
                file: faults_path.to_string(),
                line: site.line,
                message: format!(
                    "fault site {} (\"{}\") is never exercised: add an injection case to {}",
                    site.name, site.value, registry_path
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    const FAULTS: &str = "pub mod sites {\n    /// Before admission.\n    pub const ADMISSION: &str = \"serving::admission\";\n    pub const ORPHAN: &str = \"serving::orphan\";\n}\n";

    #[test]
    fn parses_names_values_and_lines() {
        let sites = parse_sites(&scan(FAULTS));
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].name, "ADMISSION");
        assert_eq!(sites[0].value, "serving::admission");
        assert_eq!(sites[0].line, 3);
    }

    #[test]
    fn unregistered_site_is_flagged_registered_is_not() {
        let registry = "let _p = plan.inject(sites::ADMISSION, None, None, Fault::Diverge);";
        let d = check("crates/stats/src/faults.rs", &scan(FAULTS), "tests/fault_injection.rs",
                      Some(registry));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("ORPHAN"));
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn literal_string_registration_counts() {
        let registry = "install_at(\"serving::orphan\"); use_(sites::ADMISSION);";
        let d = check("f.rs", &scan(FAULTS), "t.rs", Some(registry));
        assert!(d.is_empty());
    }

    #[test]
    fn missing_registry_flags_every_site() {
        let d = check("f.rs", &scan(FAULTS), "t.rs", None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn prefix_site_names_do_not_shadow() {
        // `sites::ADMISSION_LATE` must not register `sites::ADMISSION`.
        let registry = "plan.inject(sites::ADMISSION_LATE, ...)";
        let faults = "pub mod sites {\n    pub const ADMISSION: &str = \"a\";\n}\n";
        let d = check("f.rs", &scan(faults), "t.rs", Some(registry));
        assert_eq!(d.len(), 1);
    }
}
