//! `predictive-no-alloc`: keep the dish bank's fused predictive kernels
//! allocation-free.
//!
//! The whole point of the struct-of-arrays posterior layout is that the hot
//! kernels — `score_all`/`score_prior` (one observation vs. every dish),
//! the `block_predictive*` family (a batch vs. one dish), and the rank-m
//! `attach_block`/`detach_block` state updates — run on caller-provided or
//! bank-owned scratch. A stray `Vec::new()`, `vec![...]`, `.clone()`,
//! `.to_vec()` or `.collect()` inside either kernel silently reintroduces
//! the per-evaluation heap traffic the refactor removed, and nothing in the
//! type system would catch it. This rule bans those tokens inside the kernel
//! function bodies (and only there — slower convenience wrappers in the same
//! file may allocate freely).
//!
//! A genuinely justified allocation (none is expected) takes the standard
//! `// osr-lint: allow(predictive-no-alloc, reason)` pragma.
//!
//! Detection: brace-depth tracking from each `fn <kernel>` line to its
//! closing brace, over scanner-blanked code (strings and comments never
//! false-positive). Allocation tokens are matched with identifier-boundary
//! checks so e.g. `non_vec_fn()` or `reclone_id` never trip it.

use crate::diagnostics::Diagnostic;
use crate::scanner::ScannedFile;

/// The hot kernel functions that must stay allocation-free: the two fused
/// predictive shapes (plus their shared-stats and prior entry points) and
/// the rank-m block attach/detach that the table-dish move runs per sweep.
const KERNEL_FNS: &[&str] = &[
    "score_all",
    "score_prior",
    "block_predictive",
    "block_predictive_stats",
    "block_predictive_prior",
    "attach_block",
    "detach_block",
    "compute_block_stats",
];

/// Allocation tokens banned inside the kernels. `(needle, must_follow_dot)`:
/// dot-method tokens only count as calls when written `.needle()`.
const ALLOC_TOKENS: &[(&str, bool)] = &[
    ("Vec::new", false),
    ("vec!", false),
    ("Box::new", false),
    ("String::new", false),
    ("to_owned", true),
    ("to_vec", true),
    ("clone", true),
    ("collect", true),
];

/// Flag allocation tokens inside the predictive kernel bodies of `path`.
pub fn check(path: &str, file: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut depth_into_kernel: Option<i32> = None;
    let mut depth: i32 = 0;
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let entering = depth_into_kernel.is_none()
            && KERNEL_FNS.iter().any(|f| has_fn_decl(code, f));
        if entering {
            // Body starts at this function's opening brace depth.
            depth_into_kernel = Some(depth);
        }
        if depth_into_kernel.is_some() {
            if let Some(tok) = first_alloc_token(code) {
                out.push(Diagnostic {
                    rule: "predictive-no-alloc".to_string(),
                    file: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`{tok}` allocates inside a fused predictive kernel; use the \
                         caller-provided scratch / bank-owned buffers, or document why \
                         with an allow pragma"
                    ),
                });
            }
        }
        for b in code.bytes() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if let Some(base) = depth_into_kernel {
                        if depth <= base {
                            depth_into_kernel = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// True when `code` declares `fn name` (identifier-boundary on both sides).
fn has_fn_decl(code: &str, name: &str) -> bool {
    let mut search = code;
    while let Some(pos) = search.find("fn ") {
        let after = &search[pos + 3..];
        if let Some(rest) = after.strip_prefix(name) {
            let boundary = rest
                .bytes()
                .next()
                .is_none_or(|b| !(b.is_ascii_alphanumeric() || b == b'_'));
            if boundary {
                return true;
            }
        }
        search = &search[pos + 3..];
    }
    false
}

/// First banned allocation token on the line, if any.
fn first_alloc_token(code: &str) -> Option<&'static str> {
    let bytes = code.as_bytes();
    for &(needle, needs_dot) in ALLOC_TOKENS {
        let mut from = 0;
        while let Some(rel) = code[from..].find(needle) {
            let start = from + rel;
            let end = start + needle.len();
            from = end;
            // Identifier boundary before (or a required `.` receiver)…
            if needs_dot {
                if start == 0 || bytes[start - 1] != b'.' {
                    continue;
                }
            } else if start > 0 {
                let prev = bytes[start - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b':' {
                    continue;
                }
            }
            // …and a call/boundary after: dot-methods must be invoked.
            if needs_dot {
                if bytes.get(end) == Some(&b'(') {
                    return Some(needle);
                }
                continue;
            }
            let next_ok = bytes
                .get(end)
                .is_none_or(|&b| !(b.is_ascii_alphanumeric() || b == b'_'));
            if next_ok {
                return Some(needle);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn lint(src: &str) -> Vec<Diagnostic> {
        check("crates/stats/src/bank.rs", &scan(src))
    }

    #[test]
    fn flags_allocation_in_kernel_bodies() {
        let src = "\
impl DishBank {
    pub fn score_all(&self) {
        let v = Vec::new();
    }
}
";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
        assert_eq!(d[0].rule, "predictive-no-alloc");
    }

    #[test]
    fn flags_each_banned_token() {
        for tok in ["vec![0.0; 4]", "x.clone()", "y.to_vec()", "it.collect()", "Box::new(3)"] {
            let src = format!(
                "fn block_predictive() {{\n    let _ = {tok};\n}}\n"
            );
            assert_eq!(lint(&src).len(), 1, "should flag `{tok}`");
        }
    }

    #[test]
    fn ignores_allocation_outside_the_kernels() {
        let src = "\
fn predictive_one() {
    let scratch = vec![0.0; 8];
    let out = Vec::new();
    let _ = (scratch, out);
}
fn score_all_helper_tables() {
    let v = Vec::new();
    let _ = v;
}
";
        assert!(lint(src).is_empty(), "wrappers and near-miss names may allocate");
    }

    #[test]
    fn kernel_scope_ends_at_its_closing_brace() {
        let src = "\
impl DishBank {
    pub fn score_all(&self, slots: &[usize]) {
        for &s in slots {
            let _ = s;
        }
    }
    pub fn after() {
        let v = Vec::new();
        let _ = v;
    }
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn identifier_boundaries_do_not_false_positive() {
        let src = "\
fn score_all() {
    let reclone_id = 3;
    let cloned = myclone(reclone_id);
    let _ = cloned;
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn score_all() {
        let v = Vec::new();
        let _ = v;
    }
}
";
        assert!(lint(src).is_empty());
    }
}
