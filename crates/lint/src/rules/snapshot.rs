//! `snapshot-versioned`: serialized snapshot metadata must be pinned to the
//! container format version and must not default-fill floats.
//!
//! The durable snapshot subsystem (PR 8) promises `save → load → re-save`
//! byte identity, guarded by per-section CRCs and a header format version.
//! Two source-level patterns quietly undermine that promise inside a
//! `snapshot.rs` module:
//!
//! * a `#[derive(Serialize)]` item in a file that never references
//!   `SNAPSHOT_FORMAT_VERSION` — serialized snapshot metadata that is not
//!   tied to the format constant can drift silently when the container
//!   version bumps;
//! * a `#[serde(default)]` on an `f32`/`f64` field — a default-filled float
//!   materializes data that was never on disk, bypassing the
//!   checksum-backed canonical bytes (and `0.0` is indistinguishable from a
//!   genuinely stored zero, so the patch-over is invisible downstream).
//!
//! Scope: files named `snapshot.rs` under `crates/` (routed by the
//! registry). Test code is exempt, as everywhere.

use crate::diagnostics::Diagnostic;
use crate::scanner::{find_matching_close, find_open_brace, has_word, ScannedFile};

/// Check one `snapshot.rs` file.
pub fn check(path: &str, file: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let lines = &file.lines;
    let version_pinned = lines
        .iter()
        .any(|l| !l.in_test && has_word(&l.code, "SNAPSHOT_FORMAT_VERSION"));

    let mut idx = 0usize;
    while idx < lines.len() {
        let code = &lines[idx].code;
        let is_serialize_derive =
            code.contains("derive(") && has_word(code, "Serialize") && code.contains("#[");
        if !is_serialize_derive || lines[idx].in_test {
            idx += 1;
            continue;
        }
        if !version_pinned {
            out.push(Diagnostic {
                rule: "snapshot-versioned".to_string(),
                file: path.to_string(),
                line: idx + 1,
                message: "#[derive(Serialize)] in a snapshot module that never references \
                          SNAPSHOT_FORMAT_VERSION: serialized snapshot metadata must be \
                          pinned to the container format version"
                    .to_string(),
            });
        }
        let Some((open_line, open_col)) = find_open_brace(lines, idx) else {
            idx += 1;
            continue;
        };
        let end = find_matching_close(lines, open_line, open_col)
            .unwrap_or(lines.len().saturating_sub(1));
        for k in open_line..=end {
            let field = &lines[k].code;
            let is_float_field = has_word(field, "f64") || has_word(field, "f32");
            let defaulted = field.contains("serde") && field.contains("default")
                || k > 0
                    && lines[k - 1].code.contains("serde")
                    && lines[k - 1].code.contains("default");
            if is_float_field && defaulted {
                out.push(Diagnostic {
                    rule: "snapshot-versioned".to_string(),
                    file: path.to_string(),
                    line: k + 1,
                    message: "#[serde(default)] on a float field of a serialized snapshot \
                              item: a default-filled float materializes data the checksummed \
                              container never stored; make the field mandatory"
                        .to_string(),
                });
            }
        }
        idx = end + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    const PATH: &str = "crates/core/src/snapshot.rs";

    #[test]
    fn unpinned_serialize_derive_is_flagged() {
        let src = "#[derive(Debug, Serialize)]\npub struct Info {\n    pub bytes: usize,\n}\n";
        let d = check(PATH, &scan(src));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("SNAPSHOT_FORMAT_VERSION"));
    }

    #[test]
    fn version_pinned_derive_is_clean() {
        let src = "pub const V: u32 = SNAPSHOT_FORMAT_VERSION;\n#[derive(Serialize)]\npub struct Info {\n    pub version: u32,\n}\n";
        assert!(check(PATH, &scan(src)).is_empty());
    }

    #[test]
    fn defaulted_float_field_is_flagged_even_when_pinned() {
        let src = "use super::SNAPSHOT_FORMAT_VERSION;\n#[derive(Serialize, Deserialize)]\npub struct Meta {\n    #[serde(default)]\n    pub gamma: f64,\n    pub n: usize,\n}\n";
        let d = check(PATH, &scan(src));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 5);
        assert!(d[0].message.contains("default-filled float"));
    }

    #[test]
    fn defaults_on_non_float_fields_are_fine() {
        let src = "use super::SNAPSHOT_FORMAT_VERSION;\n#[derive(Serialize)]\npub struct Meta {\n    #[serde(default)]\n    pub name: String,\n}\n";
        assert!(check(PATH, &scan(src)).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[derive(Serialize)]\n    struct T { x: f64 }\n}\n";
        assert!(check(PATH, &scan(src)).is_empty());
    }

    #[test]
    fn mentions_inside_tests_do_not_pin_the_version() {
        let src = "#[derive(Serialize)]\npub struct Info { pub v: u32 }\n#[cfg(test)]\nmod tests {\n    use super::*;\n    const V: u32 = SNAPSHOT_FORMAT_VERSION;\n}\n";
        let d = check(PATH, &scan(src));
        assert_eq!(d.len(), 1, "a test-only mention must not satisfy the pin");
    }
}
