//! The rule registry: which invariant each rule guards and where it looks.
//!
//! Every rule is a pure function from a [`ScannedFile`] (plus its
//! workspace-relative path) to diagnostics; the engine in `lib.rs` applies
//! allow pragmas afterwards so suppression logic lives in one place.
//!
//! Scoping is deliberate and repo-specific (this is a workspace linter, not
//! a general tool): the panic-path rules police exactly the serving files
//! whose panics would cross a `catch_unwind` boundary, the hash rules the
//! sampler/trace paths whose iteration order reaches golden traces, and so
//! on. Scopes are path prefixes relative to the workspace root.

pub mod alloc_free;
pub mod atomics;
pub mod determinism;
pub mod fault_sites;
pub mod indexing;
pub mod panic_path;
pub mod snapshot;
pub mod unsafe_hygiene;

use crate::diagnostics::Diagnostic;
use crate::scanner::ScannedFile;

/// Every rule name the pragma parser accepts.
pub const RULE_NAMES: &[&str] = &[
    "panic-path",
    "unchecked-index",
    "unsafe-hygiene",
    "wall-clock-serde",
    "hash-iteration",
    "ambient-rng",
    "seqcst-atomic",
    "fault-site-registration",
    "predictive-no-alloc",
    "snapshot-versioned",
];

/// Vendored dependency-shim crates (directory names under `crates/`).
/// `unsafe` is tolerated there with a `// SAFETY:` comment; every other
/// rule skips them — they mirror upstream APIs, not our invariants.
pub const VENDORED_CRATES: &[&str] = &[
    "criterion",
    "crossbeam",
    "parking_lot",
    "proptest",
    "rand",
    "serde",
    "serde_derive",
    "serde_json",
];

/// Files on the panic-isolated serving path: a panic here unwinds into the
/// `BatchServer` `catch_unwind` and costs a batch, so unwinding operators
/// are banned outright (PR 3's no-unwrap discipline).
pub const PANIC_FREE_FILES: &[&str] = &[
    "crates/core/src/serving.rs",
    "crates/core/src/admission.rs",
    "crates/core/src/collective.rs",
    "crates/core/src/frontend.rs",
    "crates/core/src/registry.rs",
    "crates/core/src/snapshot.rs",
    "crates/baselines/src/serve.rs",
    "crates/hdp/src/engine.rs",
];

/// Sampler/trace paths whose iteration order feeds the golden-trace suite
/// (PR 4): `HashMap`/`HashSet` iteration order is nondeterministic across
/// processes, so those types are banned here in favour of `BTree*`.
pub const HASH_ORDER_SCOPES: &[&str] = &["crates/hdp/src/", "crates/core/src/observability.rs"];

/// Metrics hot-path files where PR 4 mandates `Relaxed` atomics: a `SeqCst`
/// fence in the per-sweep counter path serializes every sampler thread.
pub const SEQCST_FILES: &[&str] = &[
    "crates/stats/src/metrics.rs",
    "crates/stats/src/counters.rs",
    "crates/core/src/serving.rs",
    "crates/core/src/frontend.rs",
    "crates/core/src/registry.rs",
];

/// The dish-bank module whose fused predictive kernels must stay
/// allocation-free (the `predictive-no-alloc` rule, PR 6: a stray clone in
/// the hot kernels silently undoes the struct-of-arrays speedup).
pub const PREDICTIVE_KERNEL_FILE: &str = "crates/stats/src/bank.rs";

/// Where the fault-injection site registry and its test registry live.
pub const FAULT_SITES_FILE: &str = "crates/stats/src/faults.rs";
/// Integration suite every fault site must appear in.
pub const FAULT_REGISTRY_FILE: &str = "tests/fault_injection.rs";

/// True when `path` (workspace-relative, forward slashes) belongs to a
/// vendored shim crate.
pub fn is_vendored(path: &str) -> bool {
    VENDORED_CRATES.iter().any(|c| {
        path.strip_prefix("crates/")
            .and_then(|rest| rest.strip_prefix(c))
            .is_some_and(|rest| rest.starts_with('/'))
    })
}

/// Run every single-file rule that applies to `path`.
pub fn check_file(path: &str, file: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if is_vendored(path) {
        // Shims only answer for unsafe hygiene.
        out.extend(unsafe_hygiene::check(path, file, true));
        return out;
    }
    out.extend(unsafe_hygiene::check(path, file, false));
    out.extend(determinism::check_wall_clock_serde(path, file));
    out.extend(determinism::check_ambient_rng(path, file));
    if PANIC_FREE_FILES.contains(&path) {
        out.extend(panic_path::check(path, file));
        out.extend(indexing::check(path, file));
    }
    if HASH_ORDER_SCOPES.iter().any(|s| path == *s || path.starts_with(s)) {
        out.extend(determinism::check_hash_iteration(path, file));
    }
    if SEQCST_FILES.contains(&path) {
        out.extend(atomics::check(path, file));
    }
    if path == PREDICTIVE_KERNEL_FILE {
        out.extend(alloc_free::check(path, file));
    }
    // Snapshot modules anywhere in the workspace (the container codec in
    // `osr-stats`, the durable store in `hdp-osr-core`, future methods'
    // persistence layers) answer for the versioning rule by file name.
    if path.starts_with("crates/") && path.ends_with("/snapshot.rs") {
        out.extend(snapshot::check(path, file));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendored_detection() {
        assert!(is_vendored("crates/rand/src/lib.rs"));
        assert!(is_vendored("crates/serde_json/src/de.rs"));
        assert!(!is_vendored("crates/core/src/serving.rs"));
        assert!(!is_vendored("crates/randomizer/src/lib.rs"), "prefix must be a full dir name");
    }

    #[test]
    fn scopes_route_to_rules() {
        use crate::scanner::scan;
        // A HashMap in an hdp file is flagged; the same text elsewhere not.
        let f = scan("use std::collections::HashMap;\nfn f(m: &HashMap<u8, u8>) {}\n");
        assert!(!check_file("crates/hdp/src/state.rs", &f).is_empty());
        assert!(check_file("crates/eval/src/lib.rs", &f).is_empty());
    }
}
