//! Determinism rules: serialized wall-clock state, hash-order iteration,
//! and ambient RNG construction.
//!
//! The golden-trace suite (PR 4) promises byte-identical serialized
//! streams across runs and worker counts; batch results are a pure
//! function of `(model, batches, seed, policy)` (PR 2). Three source-level
//! patterns silently break those promises:
//!
//! * **`wall-clock-serde`** — a `SystemTime`/`Instant` field inside a
//!   `#[derive(Serialize)]` item serializes wall time. `SweepTrace` keeps
//!   `wall_ns` *out* of its serialized form for exactly this reason; a
//!   `#[serde(skip)]` on the field (or the line above it) is accepted.
//! * **`hash-iteration`** — `HashMap`/`HashSet` iteration order varies per
//!   process (SipHash keys are randomized), so the sampler and trace paths
//!   must use `BTreeMap`/`BTreeSet` or sort before iterating.
//! * **`ambient-rng`** — every RNG must descend from the
//!   `derive_batch_seed(seed, index)` lineage (or an explicit
//!   `seed_from_u64`); `thread_rng()`/`from_entropy()`/`OsRng` pull
//!   operating-system entropy and unseed the whole pipeline.

use crate::diagnostics::Diagnostic;
use crate::scanner::{find_matching_close, find_open_brace, has_word, ScannedFile};

/// Flag `SystemTime`/`Instant` fields inside `#[derive(..Serialize..)]`
/// struct/enum blocks of `path`.
pub fn check_wall_clock_serde(path: &str, file: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let lines = &file.lines;
    let mut idx = 0usize;
    while idx < lines.len() {
        let code = &lines[idx].code;
        let is_serialize_derive =
            code.contains("derive(") && has_word(code, "Serialize") && code.contains("#[");
        if !is_serialize_derive || lines[idx].in_test {
            idx += 1;
            continue;
        }
        let Some((open_line, open_col)) = find_open_brace(lines, idx) else {
            idx += 1;
            continue;
        };
        let end = find_matching_close(lines, open_line, open_col)
            .unwrap_or(lines.len().saturating_sub(1));
        for k in open_line..=end {
            let field = &lines[k].code;
            let skipped = field.contains("serde") && field.contains("skip")
                || k > 0
                    && lines[k - 1].code.contains("serde")
                    && lines[k - 1].code.contains("skip");
            if skipped {
                continue;
            }
            for ty in ["SystemTime", "Instant"] {
                if has_word(field, ty) {
                    out.push(Diagnostic {
                        rule: "wall-clock-serde".to_string(),
                        file: path.to_string(),
                        line: k + 1,
                        message: format!(
                            "`{ty}` inside a #[derive(Serialize)] item: wall time in a \
                             serialized struct breaks byte-identical golden traces; keep it \
                             out of the record or mark the field #[serde(skip)]"
                        ),
                    });
                }
            }
        }
        idx = end + 1;
    }
    out
}

/// Flag `HashMap`/`HashSet` in non-test code of `path` (sampler/trace
/// scope only — routed by the registry).
pub fn check_hash_iteration(path: &str, file: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            if has_word(&line.code, ty) {
                out.push(Diagnostic {
                    rule: "hash-iteration".to_string(),
                    file: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`{ty}` on a sampler/trace path: iteration order is nondeterministic \
                         across processes; use BTreeMap/BTreeSet or sort before iterating"
                    ),
                });
            }
        }
    }
    out
}

/// Ambient entropy sources that break `(seed, index)`-derived determinism.
const AMBIENT_RNG: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Flag ambient RNG construction in non-test code of `path`.
pub fn check_ambient_rng(path: &str, file: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in AMBIENT_RNG {
            if has_word(&line.code, tok) {
                out.push(Diagnostic {
                    rule: "ambient-rng".to_string(),
                    file: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`{tok}` pulls OS entropy: every RNG must derive from the \
                         derive_batch_seed(seed, index) lineage (StdRng::seed_from_u64)"
                    ),
                });
            }
        }
        // `rand::random()` has no single identifier token; match the path.
        if line.code.contains("rand::random") {
            out.push(Diagnostic {
                rule: "ambient-rng".to_string(),
                file: path.to_string(),
                line: idx + 1,
                message: "`rand::random()` is thread-RNG backed: derive the RNG from \
                          derive_batch_seed(seed, index) instead"
                    .to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    #[test]
    fn serialized_wall_clock_is_flagged() {
        let src = "#[derive(Debug, Serialize)]\npub struct Stamped {\n    pub at: std::time::SystemTime,\n    pub n: u64,\n}\n";
        let d = check_wall_clock_serde("crates/hdp/src/trace.rs", &scan(src));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn serde_skip_and_underived_structs_pass() {
        let skipped = "#[derive(Serialize)]\npub struct T {\n    #[serde(skip)]\n    pub t0: Instant,\n}\n";
        assert!(check_wall_clock_serde("f.rs", &scan(skipped)).is_empty());
        let skipped_inline = "#[derive(Serialize)]\npub struct T {\n    #[serde(skip)] pub t0: Instant,\n}\n";
        assert!(check_wall_clock_serde("f.rs", &scan(skipped_inline)).is_empty());
        let underived = "pub struct T {\n    pub t0: Instant,\n}\nfn f() { let _ = Instant::now(); }\n";
        assert!(check_wall_clock_serde("f.rs", &scan(underived)).is_empty());
    }

    #[test]
    fn instant_outside_the_struct_is_not_flagged() {
        let src = "use std::time::Instant;\n#[derive(Serialize)]\npub struct T {\n    pub n: u64,\n}\nfn f() -> Instant { Instant::now() }\n";
        assert!(check_wall_clock_serde("f.rs", &scan(src)).is_empty());
    }

    #[test]
    fn hash_types_flagged_outside_tests_only() {
        let src = "fn f() {\n    let m = std::collections::HashMap::new();\n}\n#[cfg(test)]\nmod tests {\n    fn t() { let s = std::collections::HashSet::new(); }\n}\n";
        let d = check_hash_iteration("crates/hdp/src/state.rs", &scan(src));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn ambient_rng_tokens() {
        let d = check_ambient_rng(
            "f.rs",
            &scan("fn f() {\n    let mut rng = rand::thread_rng();\n    let x: u8 = rand::random();\n}\n"),
        );
        assert_eq!(d.len(), 2);
        let good = "fn f(seed: u64) { let rng = StdRng::seed_from_u64(seed); }\n";
        assert!(check_ambient_rng("f.rs", &scan(good)).is_empty());
    }
}
