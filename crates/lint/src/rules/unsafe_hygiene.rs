//! `unsafe-hygiene`: no `unsafe` outside the vendored shims; inside them,
//! every `unsafe` needs an adjacent `// SAFETY:` comment.
//!
//! The workspace's own crates all carry `#![deny(unsafe_code)]` (or
//! `forbid`); this rule backstops that at the source level — it also
//! catches `#[allow(unsafe_code)]` escape attempts, because the `unsafe`
//! token itself is what triggers. Vendored shims mirror upstream crates
//! that may genuinely need `unsafe`; there the contract is a `// SAFETY:`
//! comment on the same line or within the two lines above, stating the
//! invariant that makes the block sound.

use crate::diagnostics::Diagnostic;
use crate::scanner::{has_word, ScannedFile};

/// Flag `unsafe` misuse in `path`. `vendored` selects the shim contract.
pub fn check(path: &str, file: &ScannedFile, vendored: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        if !vendored {
            out.push(Diagnostic {
                rule: "unsafe-hygiene".to_string(),
                file: path.to_string(),
                line: idx + 1,
                message: "`unsafe` is forbidden outside the vendored shim crates; every \
                          workspace crate is #![deny(unsafe_code)]"
                    .to_string(),
            });
            continue;
        }
        let documented = (idx.saturating_sub(2)..=idx)
            .any(|k| file.lines.get(k).is_some_and(|l| l.comment.contains("SAFETY:")));
        if !documented {
            out.push(Diagnostic {
                rule: "unsafe-hygiene".to_string(),
                file: path.to_string(),
                line: idx + 1,
                message: "`unsafe` without an adjacent `// SAFETY:` comment; state the \
                          invariant that makes this block sound"
                    .to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    #[test]
    fn forbidden_outside_shims_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { std::hint::unreachable_unchecked() } }\n}\n";
        let d = check("crates/core/src/lib.rs", &scan(src), false);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn vendored_needs_adjacent_safety_comment() {
        let ok = "// SAFETY: the buffer outlives the call.\nunsafe { ptr.read() }\n";
        assert!(check("crates/rand/src/lib.rs", &scan(ok), true).is_empty());
        let trailing = "unsafe { ptr.read() } // SAFETY: checked above\n";
        assert!(check("crates/rand/src/lib.rs", &scan(trailing), true).is_empty());
        let bad = "fn f() {\n    unsafe { ptr.read() }\n}\n";
        let d = check("crates/rand/src/lib.rs", &scan(bad), true);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn safety_comment_two_lines_up_counts() {
        let src = "// SAFETY: len <= capacity by construction;\n// the region is initialized.\nunsafe { v.set_len(n) }\n";
        assert!(check("crates/rand/src/lib.rs", &scan(src), true).is_empty());
    }

    #[test]
    fn the_word_in_strings_or_comments_is_ignored() {
        let src = "// unsafe is a scary word\nlet s = \"unsafe\";\n";
        assert!(check("crates/core/src/lib.rs", &scan(src), false).is_empty());
    }
}
