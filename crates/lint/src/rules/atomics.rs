//! `seqcst-atomic`: the metrics hot path mandates `Relaxed` ordering.
//!
//! PR 4's registry design: per-sweep counters/histograms are plain
//! monotonic accumulators with no cross-variable ordering requirement, so
//! `Ordering::Relaxed` is correct and anything stronger only inserts
//! fences into the sampler's inner loop. A `SeqCst` appearing in
//! `crates/stats/src/metrics.rs`, `counters.rs` or the serving work-queue
//! counter is almost always a reflexive default, not a decision — flag it
//! and make the author justify it with an allow pragma if it is real.

use crate::diagnostics::Diagnostic;
use crate::scanner::{has_word, ScannedFile};

/// Flag `SeqCst` in non-test code of `path`.
pub fn check(path: &str, file: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if has_word(&line.code, "SeqCst") {
            out.push(Diagnostic {
                rule: "seqcst-atomic".to_string(),
                file: path.to_string(),
                line: idx + 1,
                message: "SeqCst on the metrics hot path: the registry's accumulators are \
                          order-free, use Ordering::Relaxed (or justify with an allow pragma)"
                    .to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    #[test]
    fn flags_seqcst_and_accepts_relaxed() {
        let bad = "fn inc(c: &AtomicU64) { c.fetch_add(1, Ordering::SeqCst); }\n";
        let d = check("crates/stats/src/metrics.rs", &scan(bad), );
        assert_eq!(d.len(), 1);
        let good = "fn inc(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(check("crates/stats/src/metrics.rs", &scan(good)).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(c: &AtomicU64) { c.load(Ordering::SeqCst); }\n}\n";
        assert!(check("crates/stats/src/metrics.rs", &scan(src)).is_empty());
    }
}
