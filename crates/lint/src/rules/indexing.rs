//! `unchecked-index`: ban panicking `[...]` indexing/slicing on the
//! panic-isolated serving path.
//!
//! `xs[i]` and `&xs[a..b]` panic out of bounds, which on the serving path
//! is a lost batch (see `panic-path`). Use `.get()`/`.get_mut()` with a
//! typed fallback, or — where the index is a structural invariant the
//! surrounding bookkeeping maintains, as in the seating engine — a
//! file-scope `osr-lint: allow-file(unchecked-index, reason)` documenting
//! that invariant.
//!
//! Detection: a `[` immediately preceded by an identifier character, `)`
//! or `]` is an index expression. Attribute (`#[...]`), macro (`vec![`),
//! slice-type (`&[T]`) and array-literal (`[0; n]`) brackets all follow
//! other characters and are never flagged.

use crate::diagnostics::Diagnostic;
use crate::scanner::ScannedFile;

/// Flag index expressions in non-test code of `path`.
pub fn check(path: &str, file: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if let Some(col) = first_index_expr(&line.code) {
            out.push(Diagnostic {
                rule: "unchecked-index".to_string(),
                file: path.to_string(),
                line: idx + 1,
                message: format!(
                    "unchecked `[...]` indexing panics out of bounds (column {}); \
                     use .get()/.get_mut() or document the invariant with an allow pragma",
                    col + 1
                ),
            });
        }
    }
    out
}

/// Column of the first index expression in `code`, if any.
fn first_index_expr(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            // `r"..."` openers are blanked by the scanner, so an identifier
            // char before `[` is genuinely an index base.
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn lint(src: &str) -> Vec<Diagnostic> {
        check("crates/core/src/serving.rs", &scan(src))
    }

    #[test]
    fn flags_index_and_slice_expressions() {
        assert_eq!(lint("fn f(xs: &[u8], i: usize) { xs[i]; }\n").len(), 1);
        assert_eq!(lint("fn f(xs: &[u8]) { let _ = &xs[1..3]; }\n").len(), 1);
        assert_eq!(lint("fn f(m: &M) { m.rows(0)[2]; }\n").len(), 1, "call result indexing");
        assert_eq!(lint("fn f(g: &G) { g[0][1]; }\n").len(), 1, "one diagnostic per line");
    }

    #[test]
    fn ignores_types_attributes_macros_and_literals() {
        assert!(lint("#[derive(Debug)]\nfn f(xs: &[u8]) -> [u8; 2] { [0, 1] }\n").is_empty());
        assert!(lint("fn f() { let v = vec![1, 2, 3]; let _ = v.first(); }\n").is_empty());
        assert!(lint("fn f(b: Box<[u8]>) {}\n").is_empty());
        assert!(lint("fn f() { let [a, b] = [1, 2]; let _ = (a, b); }\n").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(lint("#[cfg(test)]\nmod tests {\n    fn t(xs: &[u8]) { xs[0]; }\n}\n").is_empty());
    }
}
