//! `panic-path`: ban unwinding operators on the panic-isolated serving
//! path (PR 3).
//!
//! A panic inside `crates/core/src/serving.rs`, `admission.rs` or
//! `crates/hdp/src/engine.rs` unwinds into the `BatchServer`'s
//! `catch_unwind` and turns a recoverable condition into a lost batch
//! (`OsrError::Internal`). Errors there must be typed (`OsrError`) or
//! reported through the divergence watchdog — never `unwrap`/`expect`/
//! `panic!`/`unreachable!`. Test code is exempt; deliberate injected
//! panics carry an `osr-lint: allow(panic-path, ...)` pragma.

use crate::diagnostics::Diagnostic;
use crate::scanner::ScannedFile;

/// Substring patterns that unwind. Parens included so `unwrap_or(..)`,
/// `expect_err(..)` and `should_panic` never match.
const BANNED: &[(&str, &str)] = &[
    (".unwrap(", "`.unwrap()` panics; return a typed OsrError or use the divergence watchdog"),
    (".expect(", "`.expect()` panics; return a typed OsrError or use the divergence watchdog"),
    ("panic!", "`panic!` costs the whole batch at the catch_unwind boundary"),
    ("unreachable!", "`unreachable!` panics; poison the divergence flag and recover instead"),
    ("todo!", "`todo!` panics; serving code must be complete"),
    ("unimplemented!", "`unimplemented!` panics; serving code must be complete"),
];

/// Flag every unwinding operator in non-test code of `path`.
pub fn check(path: &str, file: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for &(pat, why) in BANNED {
            if line.code.contains(pat) {
                out.push(Diagnostic {
                    rule: "panic-path".to_string(),
                    file: path.to_string(),
                    line: idx + 1,
                    message: format!("{why} (found `{}`)", pat.trim_end_matches('(')),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn lint(src: &str) -> Vec<Diagnostic> {
        check("crates/core/src/serving.rs", &scan(src))
    }

    #[test]
    fn flags_each_unwinding_operator() {
        let d = lint(
            "fn f(x: Option<u8>) {\n    x.unwrap();\n    x.expect(\"m\");\n    panic!(\"b\");\n    unreachable!();\n}\n",
        );
        assert_eq!(d.len(), 4);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[3].line, 5);
    }

    #[test]
    fn ignores_non_panicking_cousins() {
        assert!(lint("fn f(x: Option<u8>) { x.unwrap_or(0); x.unwrap_or_else(|| 1); }\n")
            .is_empty());
        assert!(lint("fn f(r: Result<u8, u8>) { r.expect_err(\"e\"); }\n").is_empty());
    }

    #[test]
    fn ignores_strings_comments_and_tests() {
        assert!(lint("// .unwrap() is banned\nlet s = \"panic!\";\n").is_empty());
        assert!(lint("#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n").is_empty());
    }
}
