//! Workspace walking and the `--changed-only` file filter.
//!
//! The walker enumerates the same tree `cargo` builds: the root package's
//! `src`/`tests`/`examples`/`benches` plus every `crates/<name>` member's
//! `src`/`tests`/`benches`. Paths are reported workspace-relative with
//! forward slashes so reports are identical across machines. Ordering is
//! sorted, so a full run is deterministic end to end.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Directories scanned inside the workspace root itself.
const ROOT_DIRS: &[&str] = &["src", "tests", "examples", "benches"];
/// Directories scanned inside each `crates/<name>` member.
const CRATE_DIRS: &[&str] = &["src", "tests", "benches"];

/// Every `.rs` file of the workspace at `root`, as sorted
/// `(relative_path, contents)` pairs.
pub fn collect_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in ROOT_DIRS {
        walk_rs(&root.join(dir), &mut files);
    }
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut members: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            for dir in CRATE_DIRS {
                walk_rs(&member.join(dir), &mut files);
            }
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = relative_slash(root, &path);
        let contents = fs::read_to_string(&path)?;
        out.push((rel, contents));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Recursively collect `.rs` files under `dir` (missing dirs are fine).
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// `path` relative to `root`, with forward slashes.
fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_string_lossy().replace('\\', "/");
    s
}

/// The files changed since `git merge-base HEAD main` (committed or not),
/// workspace-relative. `None` when git is unavailable or there is no
/// usable merge base — callers should fall back to a full scan.
pub fn changed_files(root: &Path) -> Option<Vec<String>> {
    let base = git(root, &["merge-base", "HEAD", "main"])?;
    let base = base.trim();
    if base.is_empty() {
        return None;
    }
    let diff = git(root, &["diff", "--name-only", base])?;
    let mut files: Vec<String> = diff.lines().map(str::to_string).collect();
    // Untracked files are changes too (a brand-new violation must not hide
    // from the fast path).
    if let Some(untracked) = git(root, &["ls-files", "--others", "--exclude-standard"]) {
        files.extend(untracked.lines().map(str::to_string));
    }
    files.sort();
    files.dedup();
    Some(files)
}

fn git(root: &Path, args: &[&str]) -> Option<String> {
    let out = Command::new("git").args(args).current_dir(root).output().ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout).ok()
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/a/b");
        assert_eq!(relative_slash(root, Path::new("/a/b/crates/x/src/lib.rs")),
                   "crates/x/src/lib.rs");
    }
}
