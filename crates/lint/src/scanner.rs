//! The lightweight source scanner every rule runs on.
//!
//! No parser dependency: a character-level state machine blanks out
//! comments, string/char literals and raw strings (preserving line and
//! column positions), collects the comment text per line (pragmas live in
//! comments), and then a brace-tracking pass marks `#[cfg(test)]` modules
//! and `#[test]` functions so rules can exempt test code.
//!
//! Everything here is panic-free by construction — a fuzz test feeds the
//! scanner arbitrary byte soup — because the linter gating CI must never
//! take CI down with it.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line with comments and string/char literal *contents* replaced
    /// by spaces (delimiters included). Token scans run on this.
    pub code: String,
    /// Concatenated comment text of the line (without `//`/`/*` markers).
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` module/function or a
    /// `#[test]` function.
    pub in_test: bool,
}

/// A whole scanned file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Scanned lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// The raw source, for rules that need literal values (fault sites).
    pub raw: String,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
}

/// Scan `source` into blanked lines + per-line comment text + test regions.
pub fn scan(source: &str) -> ScannedFile {
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;

    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            // Line comments end at the newline; everything else survives it.
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str { raw_hashes: None };
                    code.push(' ');
                    i += 1;
                    continue;
                }
                // Raw strings: r"...", r#"..."#, br##"..."## and so on.
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    if let Some((hashes, consumed)) = raw_string_open(&chars, i) {
                        state = State::Str { raw_hashes: Some(hashes) };
                        for _ in 0..consumed {
                            code.push(' ');
                        }
                        i += consumed;
                        continue;
                    }
                }
                // Byte strings b"..." (plain).
                if c == 'b' && next == Some('"') && !prev_is_ident(&chars, i) {
                    state = State::Str { raw_hashes: None };
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                // Char literal vs lifetime: 'x' / '\n' are literals,
                // 'static / <'a> are lifetimes (kept as code, harmless).
                if c == '\'' {
                    if let Some(consumed) = char_literal_len(&chars, i) {
                        for _ in 0..consumed {
                            code.push(' ');
                        }
                        i += consumed;
                        continue;
                    }
                }
                code.push(c);
                i += 1;
            }
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    state = if depth <= 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::Str { raw_hashes } => {
                match raw_hashes {
                    None => {
                        if c == '\\' {
                            // Escape: skip the escaped char too (handles \").
                            code.push(' ');
                            if next.is_some() && next != Some('\n') {
                                code.push(' ');
                                i += 2;
                            } else {
                                i += 1;
                            }
                            continue;
                        }
                        if c == '"' {
                            state = State::Code;
                        }
                    }
                    Some(h) => {
                        if c == '"' && has_hashes(&chars, i + 1, h) {
                            for _ in 0..=h {
                                code.push(' ');
                            }
                            i += 1 + h as usize;
                            state = State::Code;
                            continue;
                        }
                    }
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    // Flush a final line without trailing newline (mirrors str::lines: a
    // trailing '\n' does not open an extra empty line).
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line { code, comment, in_test: false });
    }

    mark_test_regions(&mut lines);
    ScannedFile { lines, raw: source.to_string() }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0
        && chars
            .get(i - 1)
            .is_some_and(|p| p.is_alphanumeric() || *p == '_')
}

/// When `chars[i..]` opens a raw (byte) string (`r`, `br` + hashes + `"`),
/// return (hash count, chars consumed by the opener).
fn raw_string_open(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
        if hashes > 255 {
            return None;
        }
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

fn has_hashes(chars: &[char], from: usize, n: u32) -> bool {
    (0..n as usize).all(|k| chars.get(from + k) == Some(&'#'))
}

/// Length of the char literal starting at `chars[i]` (a `'`), or `None`
/// when this `'` starts a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // '\x'-style escape: find the closing quote within a few chars.
            for k in 3..=10 {
                match chars.get(i + k) {
                    Some('\'') => return Some(k + 1),
                    None | Some('\n') => return None,
                    _ => {}
                }
            }
            None
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(3),
        _ => None, // lifetime ('a, 'static) or stray quote
    }
}

/// Mark lines inside `#[cfg(test)]` / `#[cfg(all(test, ...))]` modules and
/// `#[test]` functions. Brace matching runs on the blanked code, so braces
/// in strings and comments cannot confuse it; an unbalanced region (e.g. a
/// truncated file) extends to end of file, which errs toward exempting.
fn mark_test_regions(lines: &mut [Line]) {
    let mut li = 0usize;
    while li < lines.len() {
        let code = &lines[li].code;
        let is_test_attr = (code.contains("cfg(test)") || code.contains("cfg(all(test"))
            && code.contains("#[")
            || code.contains("#[test]")
            || code.contains("#[ test ]");
        if is_test_attr && !lines[li].in_test {
            if let Some((open_line, open_col)) = find_open_brace(lines, li) {
                let close = find_matching_close(lines, open_line, open_col);
                let end = close.unwrap_or(lines.len().saturating_sub(1));
                for line in lines.iter_mut().take(end + 1).skip(li) {
                    line.in_test = true;
                }
                li = end + 1;
                continue;
            }
        }
        li += 1;
    }
}

/// First `{` at or after line `from` (blanked code only).
pub(crate) fn find_open_brace(lines: &[Line], from: usize) -> Option<(usize, usize)> {
    for (li, line) in lines.iter().enumerate().skip(from) {
        // A `;` before any `{` means the attribute annotated a braceless
        // item (e.g. `#[cfg(test)] use ...;`) — no region to mark.
        for (col, c) in line.code.char_indices() {
            match c {
                '{' => return Some((li, col)),
                ';' => return None,
                _ => {}
            }
        }
    }
    None
}

/// Line of the `}` matching the `{` at (open_line, open_col).
pub(crate) fn find_matching_close(
    lines: &[Line],
    open_line: usize,
    open_col: usize,
) -> Option<usize> {
    let mut depth = 0i64;
    for (li, line) in lines.iter().enumerate().skip(open_line) {
        let start = if li == open_line { open_col } else { 0 };
        for (col, c) in line.code.char_indices() {
            if col < start {
                continue;
            }
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(li);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// True when `code` contains `token` as a whole word (neither neighbour is
/// an identifier character).
pub fn has_word(code: &str, token: &str) -> bool {
    find_word(code, token).is_some()
}

/// Byte offset of the first whole-word occurrence of `token` in `code`.
pub fn find_word(code: &str, token: &str) -> Option<usize> {
    if token.is_empty() {
        return None;
    }
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code.get(from..).and_then(|s| s.find(token)) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + token.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + token.len().max(1);
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_strings_and_comments() {
        let f = scan("let x = \"unwrap() inside\"; // .unwrap() too\nlet y = 1;\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains(".unwrap() too"));
        assert!(f.lines[1].code.contains("let y = 1;"));
    }

    #[test]
    fn handles_raw_strings_and_chars() {
        let f = scan("let s = r#\"panic!(\"x\")\"#;\nlet c = '\\n'; let l: &'static str = s;\n");
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[1].code.contains("static"), "lifetimes survive blanking");
    }

    #[test]
    fn nested_block_comments() {
        let f = scan("/* outer /* inner */ still comment */ let z = 2;\n");
        assert!(f.lines[0].code.contains("let z = 2;"));
        assert!(!f.lines[0].code.contains("outer"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test && f.lines[3].in_test && f.lines[4].in_test);
        assert!(!f.lines[5].in_test, "code after the test module is live again");
    }

    #[test]
    fn test_fn_attribute_marks_its_body() {
        let src = "#[test]\nfn check() {\n    v[0];\n}\nfn live() {}\n";
        let f = scan(src);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_marks_nothing() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { m.unwrap(); }\n";
        let f = scan(src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("let m: HashMap<u8, u8>;", "HashMap"));
        assert!(!has_word("let m = unwrap_or_default();", "unwrap"));
        assert!(has_word("x.unwrap()", "unwrap"));
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let f = scan("let s = \"never closed\nlet t = 1;\n");
        assert_eq!(f.lines.len(), 2);
    }
}
