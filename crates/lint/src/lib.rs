//! `osr-lint` — the workspace invariant linter.
//!
//! The serving stack stakes correctness on invariants no compiler checks:
//! bit-identical golden traces across worker counts, panic-isolated
//! no-unwrap serving paths, `(seed, index)`-derived RNGs everywhere. This
//! crate machine-enforces them as a CI gate (`scripts/verify.sh` runs
//! `cargo run -p osr-lint -- --format json` and fails on violations).
//!
//! Design constraints, in order:
//!
//! 1. **No external parser.** A line/token scanner over blanked source
//!    (comments and string literals removed) is enough for every rule
//!    here, keeps the linter out of the dependency graph it polices, and
//!    honors the workspace's vendored-shim policy.
//! 2. **Deterministic reports.** Sorted file walk, sorted diagnostics, no
//!    timestamps: the JSON report over the committed fixture tree is a
//!    golden file.
//! 3. **Never panics.** The scanner is fuzzed with arbitrary text; a
//!    linter that takes CI down is worse than no linter.
//!
//! See `rules/` for the registry and [`pragma`] for the
//! `// osr-lint: allow(rule, reason)` escape hatch.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod diagnostics;
pub mod pragma;
pub mod rules;
pub mod scanner;
pub mod workspace;

use std::io;
use std::path::Path;

use diagnostics::Report;

/// Run the full lint over the workspace at `root`.
///
/// With `changed_only`, only files touched since `git merge-base HEAD
/// main` are scanned (the cross-file fault-site rule still runs whenever
/// either of its two files is in the changed set). Falls back to a full
/// scan when git or the merge base is unavailable.
///
/// # Errors
/// Propagates I/O failures reading the source tree.
pub fn run(root: &Path, changed_only: bool) -> io::Result<Report> {
    let sources = workspace::collect_sources(root)?;
    let changed = if changed_only { workspace::changed_files(root) } else { None };
    let in_scope = |path: &str| match &changed {
        Some(list) => list.iter().any(|c| c == path),
        None => true,
    };

    let mut report = Report::default();
    let mut faults_scanned = None;
    let mut registry_raw = None;
    let mut fault_rule_due = false;

    for (path, text) in &sources {
        let scanned = scanner::scan(text);
        if path == rules::FAULT_SITES_FILE {
            fault_rule_due |= in_scope(path);
        }
        if path == rules::FAULT_REGISTRY_FILE {
            registry_raw = Some(text.clone());
            fault_rule_due |= in_scope(path);
        }
        if !in_scope(path) {
            if path == rules::FAULT_SITES_FILE {
                faults_scanned = Some(scanned);
            }
            continue;
        }
        report.files_scanned += 1;
        let pragmas = pragma::collect(&scanned, path);
        // Malformed pragmas are violations themselves and cannot be
        // suppressed.
        report.violations.extend(pragmas.diagnostics.iter().cloned());
        for diag in rules::check_file(path, &scanned) {
            if pragmas.allows(&diag.rule, diag.line) {
                report.allowed += 1;
            } else {
                report.violations.push(diag);
            }
        }
        if path == rules::FAULT_SITES_FILE {
            faults_scanned = Some(scanned);
        }
    }

    if fault_rule_due {
        if let Some(faults) = &faults_scanned {
            let pragmas = pragma::collect(faults, rules::FAULT_SITES_FILE);
            for diag in rules::fault_sites::check(
                rules::FAULT_SITES_FILE,
                faults,
                rules::FAULT_REGISTRY_FILE,
                registry_raw.as_deref(),
            ) {
                if pragmas.allows(&diag.rule, diag.line) {
                    report.allowed += 1;
                } else {
                    report.violations.push(diag);
                }
            }
        }
    }

    report.finish();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_tree_reports_clean(){
        // The linter's own crate directory is a valid (empty-ish) root: no
        // crates/ subtree, no src/ violations — but `src` here is the lint
        // source itself, which must be clean.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let report = run(root, false).expect("scan own crate");
        assert!(
            report.violations.is_empty(),
            "osr-lint must pass its own rules: {:?}",
            report.violations
        );
        assert!(report.files_scanned > 0);
    }
}
