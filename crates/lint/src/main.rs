//! CLI entry point for `osr-lint`.
//!
//! ```text
//! osr-lint [--root DIR] [--format human|json] [--changed-only]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    format: Format,
    changed_only: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

const USAGE: &str = "usage: osr-lint [--root DIR] [--format human|json] [--changed-only]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args { root: None, format: Format::Human, changed_only: false };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--format" => {
                let fmt = it.next().ok_or("--format requires `human` or `json`")?;
                args.format = match fmt.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--changed-only" => args.changed_only = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let root = match args.root {
        Some(dir) => dir,
        None => {
            // Default to the workspace root: search upward from the CWD,
            // then from the manifest dir (covers `cargo run -p osr-lint`
            // from anywhere inside the tree).
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match osr_lint::workspace::find_root(&cwd)
                .or_else(|| osr_lint::workspace::find_root(env!("CARGO_MANIFEST_DIR").as_ref()))
            {
                Some(dir) => dir,
                None => {
                    eprintln!("osr-lint: no workspace root found (pass --root DIR)");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match osr_lint::run(&root, args.changed_only) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("osr-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    match args.format {
        Format::Human => print!("{}", report.render_human()),
        Format::Json => println!("{}", report.render_json()),
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
