//! The machine-readable escape hatch: `// osr-lint: allow(rule, reason)`.
//!
//! Two scopes:
//!
//! * `osr-lint: allow(rule, reason)` — suppresses `rule` on the pragma's
//!   own line (trailing comment) or on the line directly below it
//!   (standalone comment above the code).
//! * `osr-lint: allow-file(rule, reason)` — suppresses `rule` for the
//!   whole file; meant for documented blanket invariants such as the
//!   seating engine's index discipline.
//!
//! A reason is mandatory — an allow without a *why* is exactly the tribal
//! knowledge the linter exists to eliminate — and the rule name must be one
//! the registry knows. Anything else is itself reported as a `pragma`
//! violation, so a typo cannot silently disable a gate.

use crate::diagnostics::Diagnostic;
use crate::rules::RULE_NAMES;
use crate::scanner::ScannedFile;

/// Rule name of pragma-syntax violations (not allowable itself).
pub const PRAGMA_RULE: &str = "pragma";

/// One parsed allow pragma.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule being suppressed.
    pub rule: String,
    /// 1-based line the pragma sits on.
    pub line: usize,
    /// Whole-file scope (`allow-file`)?
    pub file_scope: bool,
}

/// All pragmas of one file plus the diagnostics for malformed ones.
#[derive(Debug, Default)]
pub struct Pragmas {
    allows: Vec<Allow>,
    /// Malformed-pragma diagnostics (missing reason, unknown rule, ...).
    pub diagnostics: Vec<Diagnostic>,
}

impl Pragmas {
    /// Is `rule` suppressed at `line` (1-based)?
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule && (a.file_scope || a.line == line || a.line + 1 == line)
        })
    }

    /// Number of parsed (well-formed) allows.
    pub fn len(&self) -> usize {
        self.allows.len()
    }

    /// True when no well-formed allow was parsed.
    pub fn is_empty(&self) -> bool {
        self.allows.is_empty()
    }
}

/// Extract every `osr-lint:` pragma from `file`'s comments.
pub fn collect(file: &ScannedFile, path: &str) -> Pragmas {
    let mut out = Pragmas::default();
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        let Some(at) = line.comment.find("osr-lint:") else { continue };
        // A pragma is the *whole* comment: only comment punctuation may
        // precede the marker. Prose that merely mentions `osr-lint:` (docs,
        // this file) is not a pragma attempt.
        let is_pragma_comment = line
            .comment
            .get(..at)
            .is_some_and(|p| p.chars().all(|c| c.is_whitespace() || "/*!".contains(c)));
        if !is_pragma_comment {
            continue;
        }
        let directive = line.comment.get(at + "osr-lint:".len()..).unwrap_or("").trim();
        match parse_directive(directive) {
            Ok((rule, file_scope)) => out.allows.push(Allow { rule, line: lineno, file_scope }),
            Err(why) => out.diagnostics.push(Diagnostic {
                rule: PRAGMA_RULE.to_string(),
                file: path.to_string(),
                line: lineno,
                message: format!("malformed osr-lint pragma: {why}"),
            }),
        }
    }
    out
}

/// Parse `allow(rule, reason)` / `allow-file(rule, reason)`.
fn parse_directive(directive: &str) -> Result<(String, bool), String> {
    let (head, file_scope) = if let Some(rest) = directive.strip_prefix("allow-file") {
        (rest, true)
    } else if let Some(rest) = directive.strip_prefix("allow") {
        (rest, false)
    } else {
        return Err(format!(
            "unknown directive {:?} (expected `allow(...)` or `allow-file(...)`)",
            directive.split('(').next().unwrap_or(directive).trim()
        ));
    };
    let head = head.trim();
    let inner = head
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| "expected `(rule, reason)` after the directive".to_string())?;
    let (rule, reason) = inner
        .split_once(',')
        .ok_or_else(|| "missing reason: use `(rule, reason)`".to_string())?;
    let rule = rule.trim();
    let reason = reason.trim().trim_matches('"').trim();
    if rule.is_empty() {
        return Err("empty rule name".to_string());
    }
    if !RULE_NAMES.contains(&rule) {
        return Err(format!(
            "unknown rule {rule:?} (known: {})",
            RULE_NAMES.join(", ")
        ));
    }
    if reason.is_empty() {
        return Err(format!("allow({rule}) needs a non-empty reason"));
    }
    Ok((rule.to_string(), file_scope))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn pragmas_of(src: &str) -> Pragmas {
        collect(&scan(src), "f.rs")
    }

    #[test]
    fn trailing_and_standalone_allows() {
        let p = pragmas_of(
            "x.unwrap(); // osr-lint: allow(panic-path, \"checked by caller\")\n\
             // osr-lint: allow(seqcst-atomic, fence needed for init handshake)\n\
             foo();\n",
        );
        assert!(p.diagnostics.is_empty(), "{:?}", p.diagnostics);
        assert!(p.allows("panic-path", 1));
        assert!(!p.allows("panic-path", 3), "trailing allow reaches one line, not two");
        assert!(p.allows("seqcst-atomic", 2), "pragma covers its own line");
        assert!(p.allows("seqcst-atomic", 3), "and the line below");
        assert!(!p.allows("seqcst-atomic", 4));
    }

    #[test]
    fn file_scope_allow_covers_everything() {
        let p = pragmas_of("// osr-lint: allow-file(unchecked-index, \"invariant indices\")\n");
        assert!(p.allows("unchecked-index", 999));
        assert!(!p.allows("panic-path", 999));
    }

    #[test]
    fn missing_reason_is_rejected() {
        let p = pragmas_of("// osr-lint: allow(panic-path)\n");
        assert_eq!(p.diagnostics.len(), 1);
        assert!(p.diagnostics[0].message.contains("malformed"));
        assert!(!p.allows("panic-path", 1), "a malformed pragma suppresses nothing");
    }

    #[test]
    fn unknown_rule_and_directive_are_rejected() {
        let p = pragmas_of(
            "// osr-lint: allow(no-such-rule, \"why\")\n// osr-lint: disable(panic-path, x)\n",
        );
        assert_eq!(p.diagnostics.len(), 2);
        assert!(p.diagnostics[0].message.contains("unknown rule"));
        assert!(p.diagnostics[1].message.contains("unknown directive"));
    }

    #[test]
    fn empty_reason_is_rejected() {
        let p = pragmas_of("// osr-lint: allow(panic-path, \"\")\n");
        assert_eq!(p.diagnostics.len(), 1);
        assert!(p.diagnostics[0].message.contains("reason"));
    }
}
