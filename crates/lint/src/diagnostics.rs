//! Diagnostics and the two report formats (human, JSON).
//!
//! The JSON report is committed as a golden file over the fixture tree, so
//! rendering must be deterministic: diagnostics are sorted by
//! `(file, line, rule)` and the emitter writes keys in a fixed order with
//! no timestamps or absolute paths.

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (e.g. `panic-path`).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation naming the invariant.
    pub message: String,
}

/// A finished lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, sorted by `(file, line, rule)`.
    pub violations: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of diagnostics suppressed by allow pragmas.
    pub allowed: usize,
}

impl Report {
    /// Sort into the canonical deterministic order.
    pub fn finish(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    /// `file:line: [rule] message` per violation plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.violations {
            out.push_str(&format!("{}:{}: [{}] {}\n", d.file, d.line, d.rule, d.message));
        }
        out.push_str(&format!(
            "osr-lint: {} file(s) scanned, {} violation(s), {} allowed by pragma\n",
            self.files_scanned,
            self.violations.len(),
            self.allowed
        ));
        out
    }

    /// The machine-readable report (one JSON object, trailing newline).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"tool\": \"osr-lint\",\n  \"violations\": [");
        for (i, d) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&d.rule),
                json_str(&d.file),
                d.line,
                json_str(&d.message)
            ));
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"violations_total\": {},\n  \"allowed\": {}\n}}\n",
            self.files_scanned,
            self.violations.len(),
            self.allowed
        ));
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: usize, rule: &str) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message: format!("{rule} at {file}:{line}"),
        }
    }

    #[test]
    fn report_sorts_deterministically() {
        let mut r = Report {
            violations: vec![diag("b.rs", 1, "x"), diag("a.rs", 9, "x"), diag("a.rs", 2, "z"),
                             diag("a.rs", 2, "a")],
            files_scanned: 2,
            allowed: 0,
        };
        r.finish();
        let order: Vec<(String, usize, String)> =
            r.violations.iter().map(|d| (d.file.clone(), d.line, d.rule.clone())).collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".into(), 2, "a".into()),
                ("a.rs".into(), 2, "z".into()),
                ("a.rs".into(), 9, "x".into()),
                ("b.rs".into(), 1, "x".into()),
            ]
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut r = Report {
            violations: vec![Diagnostic {
                rule: "panic-path".into(),
                file: "crates/core/src/serving.rs".into(),
                line: 7,
                message: "ban \"unwrap\"\nhere".into(),
            }],
            files_scanned: 1,
            allowed: 2,
        };
        r.finish();
        let json = r.render_json();
        assert!(json.contains("\\\"unwrap\\\"\\nhere"));
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"allowed\": 2"));
        let empty = Report::default().render_json();
        assert!(empty.contains("\"violations\": []"));
    }
}
