//! The linter gates CI, so it must never panic — on any input, valid Rust
//! or byte soup. Two property tests drive the full pipeline (scanner,
//! pragma collection, every rule) over adversarial text.

use osr_lint::rules;
use osr_lint::scanner;
use proptest::prelude::*;

/// Run everything the linter would run on one in-memory file.
fn exercise(path: &str, text: &str) {
    let scanned = scanner::scan(text);
    let _ = osr_lint::pragma::collect(&scanned, path);
    let _ = rules::check_file(path, &scanned);
    let _ = rules::fault_sites::check(path, &scanned, "tests/fault_injection.rs", Some(text));
}

/// Paths that hit every scope route in the registry.
const PATHS: &[&str] = &[
    "crates/core/src/serving.rs",
    "crates/hdp/src/engine.rs",
    "crates/stats/src/metrics.rs",
    "crates/stats/src/faults.rs",
    "crates/rand/src/lib.rs",
    "crates/bench/src/harness.rs",
];

/// Fragments that steer generation into the scanner's deep states:
/// string/char/raw-string openers, comment nesting, test markers, pragma
/// syntax, and every rule's trigger tokens.
const TOKENS: &[&str] = &[
    "\"", "\\", "'", "r#\"", "\"#", "b\"", "//", "/*", "*/", "\n", "{", "}", "(", ")", ";",
    "fn f", "#[cfg(test)]", "#[test]", "mod t", "unsafe", "SAFETY:", ".unwrap()", ".expect(",
    "panic!", "x[i]", "#[derive(Serialize)]", "struct S", "SystemTime", "Instant",
    "#[serde(skip)]", "HashMap", "thread_rng", "SeqCst", "pub mod sites", "const A: &str = ",
    "osr-lint: allow(panic-path, why)", "osr-lint: allow-file(", "osr-lint: allow(", "'a",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_bytes_never_panic(
        codes in prop::collection::vec(0u32..=255, 0..512),
        path_idx in 0usize..PATHS.len(),
    ) {
        let bytes: Vec<u8> = codes.iter().map(|&c| c as u8).collect();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        exercise(PATHS[path_idx], &text);
    }

    #[test]
    fn token_soup_never_panics(
        picks in prop::collection::vec(0usize..TOKENS.len(), 0..96),
        path_idx in 0usize..PATHS.len(),
    ) {
        let text: String = picks.iter().map(|&i| TOKENS[i]).collect();
        exercise(PATHS[path_idx], &text);
    }
}
