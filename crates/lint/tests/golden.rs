//! End-to-end golden test: the committed fixture tree must produce exactly
//! the committed JSON report, byte for byte.
//!
//! The fixture tree (`crates/lint/fixtures/`) mirrors the workspace layout
//! so every scoped rule fires at its real path: panic/index violations in
//! `crates/core/src/serving.rs` and the baseline serve adapter
//! `crates/baselines/src/serve.rs`, an `allow-file` pragma in
//! `crates/hdp/src/engine.rs`, hash iteration in the sampler, serialized
//! wall clock in the trace module, SAFETY-less `unsafe` in a vendored shim,
//! an orphaned fault site, and the front-end's panic/index/SeqCst triple in
//! `crates/core/src/frontend.rs`. A report drift — new rule, changed message,
//! changed ordering — shows up here as a readable diff.

use std::path::Path;

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

#[test]
fn fixture_tree_json_matches_golden() {
    let report = osr_lint::run(&fixture_root(), false).expect("scan fixture tree");
    let got = report.render_json();
    let want = include_str!("golden_report.json");
    assert_eq!(got.trim(), want.trim(), "fixture report drifted from the golden file");
}

#[test]
fn fixture_tree_counts() {
    let report = osr_lint::run(&fixture_root(), false).expect("scan fixture tree");
    assert_eq!(report.files_scanned, 16);
    assert_eq!(report.violations.len(), 24);
    assert_eq!(report.allowed, 7, "four trailing allows + three allow-file suppressions");
}

#[test]
fn report_is_deterministic_across_runs() {
    let a = osr_lint::run(&fixture_root(), false).expect("first scan");
    let b = osr_lint::run(&fixture_root(), false).expect("second scan");
    assert_eq!(a.render_json(), b.render_json());
    assert_eq!(a.render_human(), b.render_human());
}

#[test]
fn human_rendering_carries_spans_and_rules() {
    let report = osr_lint::run(&fixture_root(), false).expect("scan fixture tree");
    let human = report.render_human();
    assert!(human.contains("crates/core/src/serving.rs:4: [panic-path]"));
    assert!(human.contains("crates/stats/src/faults.rs:8: [fault-site-registration]"));
    assert!(human.contains("crates/stats/src/bank.rs:9: [predictive-no-alloc]"));
    assert!(human.contains("crates/baselines/src/serve.rs:4: [unchecked-index]"));
    assert!(human.contains("crates/core/src/snapshot.rs:4: [snapshot-versioned]"));
    assert!(human.contains("crates/stats/src/snapshot.rs:10: [snapshot-versioned]"));
    assert!(human.contains("crates/core/src/frontend.rs:7: [seqcst-atomic]"));
    assert!(human.contains("crates/core/src/frontend.rs:11: [unchecked-index]"));
    assert!(human.contains("crates/core/src/frontend.rs:15: [panic-path]"));
    assert!(human.contains("24 violation(s)"));
}
