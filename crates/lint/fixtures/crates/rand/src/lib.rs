//! Fixture: vendored shim with unsafe.

pub fn seed_ptr(v: &mut [u8]) {
    // SAFETY: the slice is non-empty and exclusively borrowed.
    unsafe {
        *v.as_mut_ptr() = 1;
    }
}

pub fn no_comment(v: &mut [u8]) {
    unsafe {
        *v.as_mut_ptr() = 2;
    }
}
