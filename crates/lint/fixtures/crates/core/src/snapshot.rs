// Fixture: a snapshot module whose serialized metadata is not pinned to the
// container format version, plus an unwrap on the (panic-free) store path.

#[derive(Debug, Serialize)]
pub struct SnapshotInfo {
    pub method: String,
    pub bytes: usize,
}

pub fn load_unchecked(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap()
}
