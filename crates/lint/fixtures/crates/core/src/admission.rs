//! Fixture: clean admission control.

/// Admit when non-empty.
pub fn admit(points: &[f64]) -> Result<(), String> {
    if points.is_empty() {
        return Err("empty batch".to_string());
    }
    Ok(())
}
