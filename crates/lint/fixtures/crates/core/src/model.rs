//! Fixture: ambient RNG in a fit path.

pub fn fit(seed: u64) -> u64 {
    let mut rng = rand::thread_rng();
    let _ = seed;
    rng.gen()
}
