//! Fixture: the panic-free serving path.

pub fn majority(votes: &[usize]) -> usize {
    votes.iter().copied().max().unwrap()
}

pub fn pick(results: &[u8], idx: usize) -> u8 {
    results[idx]
}

pub fn checked(results: &[u8]) -> u8 {
    // osr-lint: allow(panic-path, fixture — documented invariant)
    results.first().copied().expect("non-empty")
}

pub fn boom() {
    // osr-lint: allow(panic-path)
    panic!("kaboom");
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let v = vec![1];
        assert_eq!(v[0], v.first().copied().unwrap());
    }
}
