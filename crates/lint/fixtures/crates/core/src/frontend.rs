//! Fixture: the coalescing front-end rides the panic-isolated dispatch path
//! and the `Relaxed`-only work-stealing counter.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn next_slot(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::SeqCst)
}

pub fn first_waiter(ids: &[u64]) -> u64 {
    ids[0]
}

pub fn seal(pending: &mut Vec<u64>) -> u64 {
    pending.pop().unwrap()
}

pub fn injected_flush_panic() {
    // osr-lint: allow(panic-path, fixture — the catch_unwind above is under test)
    panic!("injected flush panic");
}
