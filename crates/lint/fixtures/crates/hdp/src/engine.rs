//! Fixture: the seating engine's index discipline.

// osr-lint: allow-file(unchecked-index, fixture — indices are invariant-linked)

pub fn rotate(tables: &mut [usize], i: usize, j: usize) {
    let t = tables[i];
    tables[i] = tables[j];
    tables[j] = t;
}
