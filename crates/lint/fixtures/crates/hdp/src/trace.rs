//! Fixture: serialized trace records.

use std::time::{Instant, SystemTime};

#[derive(Debug, Serialize)]
pub struct SweepTrace {
    pub started_at: SystemTime,
    #[serde(skip)]
    pub t0: Option<Instant>,
    pub sweep: u64,
}

pub struct Deadline {
    pub at: Instant,
}
