//! Fixture: sampler bookkeeping.

use std::collections::HashMap;

pub fn counts(xs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn exempt() {
        let s: HashSet<u32> = [1, 2].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
