//! Fixture: the baseline serve adapter rides the panic-free serving path.

pub fn label(preds: &[usize], idx: usize) -> usize {
    preds[idx]
}

pub fn first(preds: &[usize]) -> usize {
    preds.first().copied().unwrap()
}

pub fn guarded(preds: &[usize]) -> usize {
    // osr-lint: allow(panic-path, fixture — adapter invariant documented)
    preds.first().copied().expect("non-empty")
}
