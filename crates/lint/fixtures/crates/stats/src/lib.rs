//! Fixture: a stats kernel.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    // SAFETY: a comment does not make this acceptable outside vendored shims.
    unsafe { dot_unchecked(a, b) }
}

unsafe fn dot_unchecked(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}
