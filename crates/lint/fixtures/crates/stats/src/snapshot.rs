// Fixture: version-pinned snapshot metadata, but a float field with a serde
// default — a default-filled float bypasses the checksummed canonical bytes.

pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
pub struct SectionMeta {
    pub version: u32,
    #[serde(default)]
    pub gamma: f64,
}
