//! Fixture: the dish-bank predictive kernels (predictive-no-alloc scope).

pub struct DishBank {
    scores: Vec<f64>,
}

impl DishBank {
    pub fn score_all(&self, slots: &[usize], out: &mut Vec<f64>) {
        let tmp = Vec::new();
        let seed = vec![0.0; slots.len()]; // osr-lint: allow(predictive-no-alloc, fixture shows the pragma escape)
        out.extend(seed);
        out.extend(tmp);
    }

    pub fn block_predictive(&mut self, points: &[&[f64]]) -> f64 {
        let staged = self.scores.clone();
        staged.len() as f64 + points.len() as f64
    }

    pub fn predictive_one(&self, x: &[f64]) -> Vec<f64> {
        // Convenience wrappers off the hot path may allocate freely.
        let mut out = Vec::new();
        out.extend_from_slice(x);
        out
    }
}
