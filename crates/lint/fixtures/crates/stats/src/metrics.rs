//! Fixture: the metrics hot path.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn inc(c: &AtomicU64) {
    c.fetch_add(1, Ordering::SeqCst);
}

pub fn read(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}
