//! Fixture: named fault sites.

/// Site registry.
pub mod sites {
    /// Admission gate.
    pub const ADMISSION: &str = "serving::admission";
    /// Never exercised.
    pub const ORPHAN: &str = "serving::orphan";
}
