//! Fixture: the fault-injection suite.

#[test]
fn survives_admission_fault() {
    let _ = sites::ADMISSION;
}
