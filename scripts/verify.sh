#!/usr/bin/env bash
# Full verification gate: release build, the complete test suite, and a
# warnings-as-errors clippy pass over every workspace crate (including the
# vendored dependency shims) — then the same test + clippy gate again with
# the deterministic fault-injection harness compiled in, which unlocks the
# serving stack's robustness acceptance suite (tests/fault_injection.rs).
#
# On top of the blanket suites, the observability layer gets targeted runs
# (golden traces + diagnostics under both feature sets) and an end-to-end
# determinism check: the trace_dump binary is run twice with one seed and
# the JSONL streams must be byte-identical.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

# Workspace invariant linter: determinism, panic-freedom on serving paths,
# unsafe hygiene, atomic orderings, fault-site registration. The JSON
# report is kept as a build artifact; any violation fails the gate.
mkdir -p results
if ! cargo run --release -q -p osr-lint -- --format json > results/lint_report.json; then
    echo "verify: FAIL — osr-lint found invariant violations:" >&2
    cargo run --release -q -p osr-lint || true
    exit 1
fi

# Observability lock-in: golden traces, convergence diagnostics, and the
# metrics registry, under the default features...
cargo test -q --test trace_determinism
cargo test -q -p osr-stats --test observability

cargo test -q --features fault-inject
cargo clippy --workspace --all-targets --features fault-inject -- -D warnings

# ...and again with fault injection compiled in (the watchdog hooks sit on
# the traced sweep path, so the stream must not change shape).
cargo test -q --features fault-inject --test trace_determinism
cargo test -q -p osr-stats --features fault-inject --test observability

# Kernel parity: the struct-of-arrays dish bank must replay the legacy
# per-dish arithmetic (bit-exact one-vs-all, tolerance-checked block ratio)
# under both feature sets — the property suite that guards the SoA layout.
cargo test -q -p osr-stats --test bank_equivalence
cargo test -q -p osr-stats --features fault-inject --test bank_equivalence

# Method-agnostic serving: CD-OSR through `&dyn CollectiveModel` must be
# bit-identical to the direct path, and every baseline must serve through
# the production BatchServer — under both feature sets, since the fault
# hooks sit on the trait seam.
cargo test -q --test collective_parity
cargo test -q --features fault-inject --test collective_parity
cargo test -q -p osr-baselines
cargo test -q -p osr-baselines --features fault-inject
cargo test -q -p osr-eval

# Durable snapshots: round-trip byte identity, the corruption taxonomy
# (truncation / bit flips / version skew → typed errors, never a panic),
# and the replica-fleet byte-identity suite — under both feature sets,
# since the snapshot fault sites sit on the save/load path.
cargo test -q --test snapshot_persistence
cargo test -q --features fault-inject --test snapshot_persistence

# Multi-tenant front-end: the coalescing invariants (exactly-once answers,
# no cross-tenant mixing, size/deadline flush conditions) and the golden
# coalescing stream at 1/2/8 workers — under both feature sets, since the
# frontend fault sites sit on the enqueue/flush path.
cargo test -q --test frontend_invariants
cargo test -q --features fault-inject --test frontend_invariants
cargo test -q --test frontend_golden
cargo test -q --features fault-inject --test frontend_golden

# Bench-schema staleness: the committed serving benchmark report must carry
# the kernel-invocation counters the SoA refactor added (PR 6) and the
# method tag + serve counters of the method-agnostic schema (v2). A missing
# field means BENCH_serving.json predates the current schema — regenerate it
# with `cargo bench -p osr-bench --bench serving`.
for field in one_vs_all_kernels_per_batch batch_vs_one_kernels_per_batch \
             schema method serve_retries degraded_batches; do
    if ! grep -q "\"$field\"" BENCH_serving.json; then
        echo "verify: FAIL — BENCH_serving.json lacks '$field'; the report is stale," >&2
        echo "        regenerate with: cargo bench -p osr-bench --bench serving" >&2
        exit 1
    fi
done

# Same staleness gate for the snapshot persistence report (save/load
# latency and bytes-on-disk vs. posterior size).
for field in schema n_dishes bytes_on_disk save_median_us load_median_us; do
    if ! grep -q "\"$field\"" BENCH_snapshot.json; then
        echo "verify: FAIL — BENCH_snapshot.json lacks '$field'; the report is stale," >&2
        echo "        regenerate with: cargo bench -p osr-bench --bench snapshot" >&2
        exit 1
    fi
done

# Same staleness gate for the front-end load report (sustained open-loop
# throughput and end-to-end latency percentiles through the coalescing
# micro-batch path).
for field in schema sustained_rps p50_ms p99_ms flushes_size flushes_deadline shed; do
    if ! grep -q "\"$field\"" BENCH_frontend.json; then
        echo "verify: FAIL — BENCH_frontend.json lacks '$field'; the report is stale," >&2
        echo "        regenerate with: cargo bench -p osr-bench --bench frontend" >&2
        exit 1
    fi
done

# The committed coalescing golden must match what the front-end emits today:
# the frontend_golden suite regenerates nothing, so byte-diff the file's
# in-repo copy against a fresh UPDATE_GOLDENS run in a scratch checkout of
# the golden only.
cp tests/goldens/frontend_stream.jsonl results/frontend_stream_committed.jsonl
UPDATE_GOLDENS=1 cargo test -q --test frontend_golden coalesced_stream_matches_committed_golden
if ! diff -q tests/goldens/frontend_stream.jsonl results/frontend_stream_committed.jsonl; then
    cp results/frontend_stream_committed.jsonl tests/goldens/frontend_stream.jsonl
    echo "verify: FAIL — regenerated coalescing golden differs from the committed one" >&2
    exit 1
fi

# Two identical seeded serving runs must write byte-identical trace streams.
./target/release/trace_dump --seed 2026 --out results/trace_verify_a.jsonl
./target/release/trace_dump --seed 2026 --out results/trace_verify_b.jsonl
if ! diff -q results/trace_verify_a.jsonl results/trace_verify_b.jsonl; then
    echo "verify: FAIL — trace stream is not deterministic across identical runs" >&2
    exit 1
fi

# ...and the CD-OSR batch records of that stream must byte-match the
# committed golden: the CollectiveModel seam is not allowed to change a
# single byte of the CD-OSR trace schema (no `method` key, same field
# order). trace_dump serves the golden suite's exact scene, so its Batch
# lines ARE the golden stream. (`echo` supplies the golden's missing
# trailing newline.)
if ! diff <(tail -n +2 results/trace_verify_a.jsonl) \
          <(cat tests/goldens/batch_stream.jsonl; echo); then
    echo "verify: FAIL — CD-OSR trace stream drifted from tests/goldens/batch_stream.jsonl" >&2
    exit 1
fi

# Replica fleet: one snapshot file, three servers with different worker
# counts. The binary itself asserts save → load → re-save byte identity and
# writes the re-encoded container next to the snapshot; here we re-check
# that on disk, demand every replica's stream byte-matches replica 0's, and
# pin replica 0 to the committed golden (the same truth the golden-trace
# suite serves, so a drift here is a snapshot-codec bug, not a new scene).
./target/release/replica_fleet --seed 2026 --replicas 3 \
    --snapshot results/replica_snapshot.bin --out-dir results
if ! cmp -s results/replica_snapshot.bin results/replica_snapshot.bin.resaved; then
    echo "verify: FAIL — re-saved snapshot container is not byte-identical" >&2
    exit 1
fi
for r in 1 2; do
    if ! diff -q "results/replica_${r}.jsonl" results/replica_0.jsonl; then
        echo "verify: FAIL — replica ${r} trace stream diverged from replica 0" >&2
        exit 1
    fi
done
if ! diff results/replica_0.jsonl tests/goldens/replica_stream.jsonl; then
    echo "verify: FAIL — replica stream drifted from tests/goldens/replica_stream.jsonl" >&2
    exit 1
fi

echo "verify: build + tests + clippy + trace determinism + snapshot durability green (default and fault-inject)"
