#!/usr/bin/env bash
# Full verification gate: release build, the complete test suite, and a
# warnings-as-errors clippy pass over every workspace crate (including the
# vendored dependency shims) — then the same test + clippy gate again with
# the deterministic fault-injection harness compiled in, which unlocks the
# serving stack's robustness acceptance suite (tests/fault_injection.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

cargo test -q --features fault-inject
cargo clippy --workspace --all-targets --features fault-inject -- -D warnings

echo "verify: build + tests + clippy green (default and fault-inject)"
