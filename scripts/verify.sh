#!/usr/bin/env bash
# Full verification gate: release build, the complete test suite, and a
# warnings-as-errors clippy pass over every workspace crate (including the
# vendored dependency shims).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

echo "verify: build + tests + clippy all green"
