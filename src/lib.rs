//! # hdp-osr — Collective decision for open set recognition
//!
//! A complete Rust reproduction of *Hierarchical Dirichlet Process-based Open
//! Set Recognition* (Geng & Chen) — the work whose journal version,
//! *Collective Decision for Open Set Recognition*, appeared as an ICDE 2023
//! extended abstract. The facade re-exports the full workspace:
//!
//! * [`linalg`] — dense matrices, Cholesky, eigen/PCA substrate,
//! * [`stats`] — special functions, samplers, the Normal–Inverse-Wishart
//!   conjugate family, and EVT (Weibull) calibration,
//! * [`dataset`] — synthetic LETTER/USPS/PENDIGITS replicas plus the paper's
//!   open-set experimental protocol,
//! * [`svm`] — SMO-based C-SVC and one-class ν-SVM,
//! * [`hdp`] — the collapsed Chinese-Restaurant-Franchise Gibbs sampler,
//! * [`baselines`] — 1-vs-Set, W-OSVM, W-SVM, P_I-SVM and OSNN,
//! * [`core`] — the HDP-OSR classifier itself (collective decision +
//!   new-class discovery),
//! * [`eval`] — metrics, grid search and the randomized trial runner.
//!
//! ## Quickstart
//!
//! ```
//! use hdp_osr::core::{HdpOsr, HdpOsrConfig, Prediction};
//! use hdp_osr::dataset::synthetic::pendigits_config;
//! use hdp_osr::dataset::protocol::{OpenSetSplit, SplitConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! // A downscaled PENDIGITS replica keeps the doctest fast; drop `.scaled`
//! // (and raise `iterations` to the paper's 30) for the real experiments.
//! let data = pendigits_config().scaled(0.03).generate(&mut rng);
//! let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 2), &mut rng).unwrap();
//!
//! let config = HdpOsrConfig { iterations: 5, ..Default::default() };
//! let model = HdpOsr::fit(&config, &split.train).unwrap();
//! let predictions = model.classify(&split.test.points, &mut rng).unwrap();
//! assert_eq!(predictions.len(), split.test.points.len());
//! let _rejected = predictions.iter().filter(|p| **p == Prediction::Unknown).count();
//! ```

pub use hdp_osr_core as core;
pub use osr_baselines as baselines;
pub use osr_dataset as dataset;
pub use osr_eval as eval;
pub use osr_hdp as hdp;
pub use osr_linalg as linalg;
pub use osr_stats as stats;
pub use osr_svm as svm;
