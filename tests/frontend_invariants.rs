//! Invariant suite for the multi-tenant coalescing front-end.
//!
//! The contract under test, over *arbitrary* interleavings of per-tenant
//! arrivals:
//!
//! * no admitted request is ever dropped, duplicated, or mixed into another
//!   tenant's micro-batch;
//! * every admitted request is answered exactly once, with its own unique
//!   `trace_id`;
//! * flush-on-size fires exactly when a tenant queue reaches `max_batch`,
//!   flush-on-deadline exactly when the oldest queued request hits the SLO
//!   — and neither fires a tick earlier;
//! * the answers (and flush identities) are independent of the dispatch
//!   worker count.
//!
//! The model under every tenant is the deterministic OSNN baseline adapter,
//! so each proptest case costs microseconds but still exercises the full
//! serve ladder behind [`BatchServer`].

// Test code: the crate-level unwrap/expect ban targets serving paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};

use hdp_osr::baselines::{BaselineSpec, OsnnParams, ServedBaseline};
use hdp_osr::core::{
    flush_seed, flush_trace_id, FlushTrigger, Frontend, FrontendConfig, ModelRegistry, OsrError,
    Prediction, ServePolicy,
};
use hdp_osr::dataset::protocol::TrainSet;
use hdp_osr::stats::sampling;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TENANTS: [&str; 3] = ["acme", "beta", "corp"];

fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            vec![
                cx + 0.5 * sampling::standard_normal(rng),
                cy + 0.5 * sampling::standard_normal(rng),
            ]
        })
        .collect()
}

/// One shared deterministic model (OSNN adapter) serving every tenant:
/// per-instance, no RNG consumption, so cases stay fast and bit-stable.
fn shared_model() -> Arc<ServedBaseline> {
    static MODEL: OnceLock<Arc<ServedBaseline>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(4_021);
        let train = TrainSet {
            class_ids: vec![1, 2],
            classes: vec![blob(&mut rng, -5.0, 0.0, 25), blob(&mut rng, 5.0, 0.0, 25)],
        };
        Arc::new(
            ServedBaseline::train(BaselineSpec::Osnn(OsnnParams::default()), &train)
                .expect("clean OSNN fit"),
        )
    }))
}

fn registry() -> ModelRegistry {
    let registry = ModelRegistry::new(TENANTS.len());
    for tenant in TENANTS {
        registry.insert(tenant, shared_model());
    }
    registry
}

fn config() -> FrontendConfig {
    FrontendConfig {
        dim: 2,
        max_batch: 5,
        max_delay_ns: 2_000,
        max_queue_depth: 512,
        base_seed: 2_026,
    }
}

/// An arrival: (tenant index, x, y, virtual gap since the previous arrival).
fn arrival() -> impl Strategy<Value = (usize, f64, f64, u64)> {
    (0usize..TENANTS.len(), -8.0f64..8.0, -8.0f64..8.0, 0u64..1_200)
}

/// Drive a full script: enqueue every arrival (polling as virtual time
/// advances), drain, dispatch at `workers`. Returns the admitted
/// (request id → tenant index) map and the flush outcomes.
fn drive(
    script: &[(usize, f64, f64, u64)],
    workers: usize,
) -> (BTreeMap<u64, usize>, Vec<hdp_osr::core::FlushOutcome>) {
    let registry = registry();
    let mut frontend = Frontend::new(config()).expect("valid config");
    let mut admitted = BTreeMap::new();
    let mut now = 0u64;
    for (tenant_idx, x, y, gap) in script {
        now += gap;
        frontend.poll(now);
        let tenant = TENANTS[*tenant_idx];
        let id = frontend.enqueue(tenant, vec![*x, *y], now).expect("healthy request");
        admitted.insert(id, *tenant_idx);
    }
    frontend.flush_all(now);
    let outcomes = frontend.dispatch(&registry, workers, &ServePolicy::default(), None);
    assert_eq!(frontend.queue_depth(), 0, "dispatch drains every admitted request");
    (admitted, outcomes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exactly-once, no loss, no duplication, no cross-tenant mixing, and
    /// a unique trace id per request — under arbitrary interleavings.
    #[test]
    fn every_request_is_answered_exactly_once_by_its_own_tenant(
        script in prop::collection::vec(arrival(), 1..60),
    ) {
        let (admitted, outcomes) = drive(&script, 4);
        let mut answered: BTreeSet<u64> = BTreeSet::new();
        let mut trace_ids: BTreeSet<String> = BTreeSet::new();
        for flush in &outcomes {
            for response in &flush.responses {
                prop_assert!(
                    answered.insert(response.request_id),
                    "request {} answered more than once", response.request_id
                );
                prop_assert!(
                    trace_ids.insert(response.trace_id.clone()),
                    "trace id {} reused", response.trace_id
                );
                // The request must ride in its own tenant's micro-batch.
                let tenant_idx = admitted.get(&response.request_id);
                prop_assert_eq!(
                    tenant_idx.map(|i| TENANTS[*i]),
                    Some(flush.tenant.as_str()),
                    "cross-tenant mix in flush {}", flush.trace_id
                );
                prop_assert!(response.result.is_ok(), "healthy request must be served");
            }
            // Flush identity is pure: seed and trace id re-derive.
            prop_assert_eq!(
                flush.seed,
                flush_seed(config().base_seed, &flush.tenant, flush.flush_epoch)
            );
            prop_assert_eq!(
                flush.trace_id.clone(),
                flush_trace_id(&flush.tenant, flush.flush_epoch, flush.seed)
            );
        }
        let admitted_ids: BTreeSet<u64> = admitted.keys().copied().collect();
        prop_assert_eq!(answered, admitted_ids, "every admitted request answered, none invented");
    }

    /// The same script answered at 1 and 8 workers yields identical
    /// predictions and identical flush identities.
    #[test]
    fn answers_are_independent_of_worker_count(
        script in prop::collection::vec(arrival(), 1..40),
    ) {
        type FlushDigest = (String, u64, Vec<(u64, Prediction)>);
        let collect = |workers: usize| -> Vec<FlushDigest> {
            let (_, outcomes) = drive(&script, workers);
            outcomes
                .iter()
                .map(|f| {
                    (
                        f.trace_id.clone(),
                        f.seed,
                        f.responses
                            .iter()
                            .map(|r| (r.request_id, *r.result.as_ref().expect("served")))
                            .collect(),
                    )
                })
                .collect()
        };
        prop_assert_eq!(collect(1), collect(8));
    }

    /// Flush-on-size fires exactly at `max_batch` — never one request
    /// earlier — and seals exactly `max_batch` requests.
    #[test]
    fn size_flush_fires_exactly_at_max_batch(max_batch in 2usize..7) {
        let registry = registry();
        let mut frontend = Frontend::new(FrontendConfig {
            max_batch,
            ..config()
        }).expect("valid config");
        for i in 0..max_batch - 1 {
            frontend.enqueue("acme", vec![0.1 * i as f64, 0.0], 5).expect("admitted");
            prop_assert_eq!(frontend.ready_batches(), 0, "no flush below max_batch");
        }
        frontend.enqueue("acme", vec![0.9, 0.0], 6).expect("admitted");
        prop_assert_eq!(frontend.ready_batches(), 1, "flush exactly at max_batch");
        prop_assert_eq!(frontend.pending_requests(), 0);
        let outcomes = frontend.dispatch(&registry, 2, &ServePolicy::default(), None);
        prop_assert_eq!(outcomes.len(), 1);
        prop_assert_eq!(outcomes[0].trigger, FlushTrigger::Size);
        prop_assert_eq!(outcomes[0].responses.len(), max_batch);
    }

    /// Flush-on-deadline fires exactly when the *oldest* queued request
    /// hits the SLO — not a tick earlier, and undersized batches ride out.
    #[test]
    fn deadline_flush_fires_exactly_at_the_slo(
        submit_ns in 0u64..10_000,
        n_queued in 1usize..4,
    ) {
        let registry = registry();
        let cfg = config();
        let mut frontend = Frontend::new(cfg).expect("valid config");
        for i in 0..n_queued {
            // Later arrivals must not extend the oldest request's deadline.
            frontend
                .enqueue("beta", vec![0.2, 0.1 * i as f64], submit_ns + i as u64)
                .expect("admitted");
        }
        let deadline = submit_ns + cfg.max_delay_ns;
        prop_assert_eq!(frontend.poll(deadline - 1), 0, "one tick early: no flush");
        prop_assert_eq!(frontend.poll(deadline), 1, "at the SLO: flush");
        let outcomes = frontend.dispatch(&registry, 1, &ServePolicy::default(), None);
        prop_assert_eq!(outcomes.len(), 1);
        prop_assert_eq!(outcomes[0].trigger, FlushTrigger::Deadline);
        prop_assert_eq!(outcomes[0].responses.len(), n_queued);
    }
}

/// Deterministic (non-property) lock-ins that complement the suite above.
#[test]
fn overload_is_shed_typed_and_sibling_tenants_keep_flowing() {
    let registry = registry();
    let mut frontend = Frontend::new(FrontendConfig {
        max_batch: 64,
        max_queue_depth: 64,
        ..config()
    })
    .expect("valid config");
    let mut shed = 0usize;
    for i in 0..80u32 {
        match frontend.enqueue("acme", vec![0.0, f64::from(i)], 0) {
            Ok(_) => {}
            Err(OsrError::Overloaded { tenant, depth }) => {
                assert_eq!(tenant, "acme");
                assert_eq!(depth, 64);
                shed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(shed, 16, "exactly the requests past the bound are shed");
    // The flooded tenant does not starve its siblings.
    frontend.enqueue("beta", vec![0.0, 0.0], 0).expect("sibling tenant admitted");
    frontend.flush_all(1);
    let outcomes = frontend.dispatch(&registry, 2, &ServePolicy::default(), None);
    assert_eq!(outcomes.len(), 2);
    // After dispatch the backlog is released: the tenant admits again.
    frontend.enqueue("acme", vec![0.0, 0.0], 2).expect("backlog released after dispatch");
}

#[test]
fn dispatch_orders_by_earliest_deadline_first() {
    let registry = registry();
    let mut frontend = Frontend::new(config()).expect("valid config");
    // `beta` enqueues first (older deadline) but `acme` flushes first by
    // size — EDF must still serve `beta`'s deadline flush metadata in
    // flush-sequence order while the outcomes stay deterministic.
    frontend.enqueue("beta", vec![0.0, 0.0], 0).expect("admitted");
    for i in 0..5u32 {
        frontend.enqueue("acme", vec![0.1, f64::from(i)], 10).expect("admitted");
    }
    frontend.flush_all(50);
    let outcomes = frontend.dispatch(&registry, 1, &ServePolicy::default(), None);
    // Outcomes come back in flush-seq order regardless of EDF execution.
    let order: Vec<(&str, FlushTrigger)> =
        outcomes.iter().map(|f| (f.tenant.as_str(), f.trigger)).collect();
    assert_eq!(order, vec![("acme", FlushTrigger::Size), ("beta", FlushTrigger::Deadline)]);
}
