//! Cross-crate compliance with the paper's experimental protocol (§4.1.1):
//! the numbers produced by the split machinery must match the verbatim
//! protocol steps wherever they can be checked arithmetically.

use hdp_osr::dataset::protocol::{
    openness, GroundTruth, OpenSetSplit, SplitConfig, ValidationSplit,
};
use hdp_osr::dataset::synthetic::{letter_config, pendigits_config};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn letter_sweep_matches_paper_openness_axis() {
    // Fig. 4: 10 known classes, up to 16 unknown ⇒ openness tops out at
    // 1 − sqrt(20/36) ≈ 25.5 %.
    let cfg = SplitConfig::new(10, 16);
    assert!((cfg.openness() - 0.2546).abs() < 1e-3, "got {:.4}", cfg.openness());
    // Closed set.
    assert_eq!(SplitConfig::new(10, 0).openness(), 0.0);
}

#[test]
fn usps_pendigits_sweep_matches_paper_openness_axis() {
    // Figs. 5/6: 5 known, up to 5 unknown ⇒ openness tops out at
    // 1 − sqrt(10/15) ≈ 18.35 %.
    let cfg = SplitConfig::new(5, 5);
    assert!((cfg.openness() - 0.1835).abs() < 1e-3, "got {:.4}", cfg.openness());
    // The "about 12 %" crossover the paper mentions sits at 3 unknowns.
    let mid = SplitConfig::new(5, 3);
    assert!((mid.openness() - 0.1228).abs() < 1e-3, "got {:.4}", mid.openness());
}

#[test]
fn step_2_and_3_produce_60_40_splits_plus_all_unknowns() {
    let mut rng = StdRng::seed_from_u64(0);
    let data = pendigits_config().scaled(0.1).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 2), &mut rng).unwrap();

    for (i, &cid) in split.train.class_ids.iter().enumerate() {
        let total = data.class_indices(cid).len();
        let in_train = split.train.classes[i].len();
        assert_eq!(in_train, (total as f64 * 0.6).round() as usize, "class {cid}");
    }
    let unknown_total: usize =
        split.unknown_class_ids.iter().map(|&c| data.class_indices(c).len()).sum();
    assert_eq!(split.test.n_unknown(), unknown_total, "step 3: all unknown samples in test");
}

#[test]
fn step_4_selects_floor_n_half_plus_half_classes() {
    // ⌊N/2 + 0.5⌋ for N = 5 is 3; for N = 10 it is 5; for N = 4 it is 2.
    let mut rng = StdRng::seed_from_u64(1);
    let data = letter_config().scaled(0.05).generate(&mut rng);
    for (n, expect) in [(5usize, 3usize), (10, 5), (4, 2), (3, 2)] {
        let split = OpenSetSplit::sample(&data, &SplitConfig::new(n, 0), &mut rng).unwrap();
        let val = ValidationSplit::sample(&split.train, &mut rng).unwrap();
        assert_eq!(val.fitting.n_classes(), expect, "N = {n}");
    }
}

#[test]
fn open_simulation_extends_closed_simulation() {
    let mut rng = StdRng::seed_from_u64(2);
    let data = pendigits_config().scaled(0.1).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 0), &mut rng).unwrap();
    let val = ValidationSplit::sample(&split.train, &mut rng).unwrap();

    // The open simulation is the closed simulation plus sim-unknowns.
    assert!(val.open.len() > val.closed.len());
    assert_eq!(val.closed.n_unknown(), 0);
    assert_eq!(val.open.len() - val.closed.len(), val.open.n_unknown());
    // Closed points appear verbatim at the front of the open simulation.
    for (c, o) in val.closed.points.iter().zip(&val.open.points) {
        assert_eq!(c, o);
    }
}

#[test]
fn ground_truth_indices_are_dense_over_training_classes() {
    let mut rng = StdRng::seed_from_u64(3);
    let data = pendigits_config().scaled(0.1).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 1), &mut rng).unwrap();
    let mut seen = [false; 5];
    for t in &split.test.truth {
        if let GroundTruth::Known(c) = t {
            assert!(*c < 5, "class index out of range: {c}");
            seen[*c] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "every known class must appear in the test set");
}

#[test]
fn openness_formula_is_scheirers() {
    // Spot values computed by hand from the formula in §2.
    assert!((openness(10, 10, 26) - (1.0 - (20.0f64 / 36.0).sqrt())).abs() < 1e-12);
    assert!((openness(5, 5, 10) - (1.0 - (10.0f64 / 15.0).sqrt())).abs() < 1e-12);
    assert_eq!(openness(7, 7, 7), 0.0);
}
