//! Integration tests of new-class discovery (paper §4.3) across the whole
//! stack: dataset → protocol → HDP-OSR → subclass report → Δ estimate.

use hdp_osr::core::{HdpOsr, HdpOsrConfig};
use hdp_osr::dataset::protocol::{OpenSetSplit, SplitConfig};
use hdp_osr::dataset::synthetic::pendigits_config;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config() -> HdpOsrConfig {
    HdpOsrConfig { iterations: 10, ..Default::default() }
}

#[test]
fn discovery_report_structure_is_consistent() {
    let mut rng = StdRng::seed_from_u64(1);
    let data = pendigits_config().scaled(0.08).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 5), &mut rng).unwrap();
    let model = HdpOsr::fit(&config(), &split.train).unwrap();
    let out = model.classify_detailed(&split.test.points, &mut rng).unwrap();

    // One report row per known class, in order.
    assert_eq!(out.report.known.len(), 5);
    for (i, g) in out.report.known.iter().enumerate() {
        assert_eq!(g.name, format!("Class{}", i + 1));
        assert!(g.n_subclasses() >= 1, "{} has no surviving subclasses", g.name);
        // Proportions within a group are in (0, 1] and sorted descending.
        let mut last = f64::INFINITY;
        for &(_, count, prop) in &g.subclasses {
            assert!(count > 0);
            assert!(prop > 0.0 && prop <= 1.0);
            assert!(prop <= last + 1e-12);
            last = prop;
        }
    }

    // The test group's proportions cover (almost) everything.
    let total = out.report.test_known_proportion + out.report.test_new_proportion;
    assert!((total - 1.0).abs() < 1e-9, "test proportions sum to {total}");

    // Dish assignments are reported for every test point.
    assert_eq!(out.test_dishes.len(), split.test.len());
    assert_eq!(out.predictions.len(), split.test.len());
}

#[test]
fn delta_estimate_is_in_a_plausible_band() {
    // 5 unknown classes in the test set; Eq. 11 is a rough estimate — the
    // paper itself reports Δ = 4 against a truth of 5. Accept 2..=9.
    let mut rng = StdRng::seed_from_u64(2);
    let data = pendigits_config().scaled(0.12).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 5), &mut rng).unwrap();
    let model = HdpOsr::fit(&config(), &split.train).unwrap();
    let out = model.classify_detailed(&split.test.points, &mut rng).unwrap();

    assert!(out.report.n_new_subclasses() > 0, "no new subclasses discovered");
    assert!(
        (2..=9).contains(&out.report.delta_estimate),
        "Δ = {} with truth 5 (|S_unknown| = {}, |S_known| = {})",
        out.report.delta_estimate,
        out.report.n_new_subclasses(),
        out.report.n_known_subclasses()
    );
}

#[test]
fn closed_test_set_discovers_nothing_substantial() {
    let mut rng = StdRng::seed_from_u64(3);
    let data = pendigits_config().scaled(0.08).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 0), &mut rng).unwrap();
    let model = HdpOsr::fit(&config(), &split.train).unwrap();
    let out = model.classify_detailed(&split.test.points, &mut rng).unwrap();
    assert!(
        out.report.test_new_proportion < 0.12,
        "closed test set put {:.1}% of its mass on new subclasses",
        out.report.test_new_proportion * 100.0
    );
}

#[test]
fn more_unknown_classes_mean_more_new_subclass_mass() {
    let mut rng = StdRng::seed_from_u64(4);
    let data = pendigits_config().scaled(0.08).generate(&mut rng);
    let mass = |n_unknown: usize, rng: &mut StdRng| {
        let split = OpenSetSplit::sample(&data, &SplitConfig::new(4, n_unknown), rng).unwrap();
        let model = HdpOsr::fit(&config(), &split.train).unwrap();
        let out = model.classify_detailed(&split.test.points, rng).unwrap();
        out.report.test_new_proportion
    };
    let low = mass(1, &mut rng);
    let high = mass(5, &mut rng);
    assert!(
        high > low,
        "new-subclass mass should grow with openness: 1 unknown → {low:.3}, 5 → {high:.3}"
    );
}

#[test]
fn report_renders_as_a_table() {
    let mut rng = StdRng::seed_from_u64(5);
    let data = pendigits_config().scaled(0.06).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 2), &mut rng).unwrap();
    let model = HdpOsr::fit(&config(), &split.train).unwrap();
    let out = model.classify_detailed(&split.test.points, &mut rng).unwrap();
    let table = out.report.to_table();
    assert!(table.contains("Class1"));
    assert!(table.contains("Testing-Set"));
    assert!(table.contains("Δ ="));
}
