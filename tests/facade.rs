//! The `hdp_osr` facade must expose every subsystem coherently: this test
//! exercises one small task through each re-exported module, using only
//! facade paths (what a downstream user sees).

use hdp_osr::baselines::{OpenSetClassifier, Osnn, OsnnParams};
use hdp_osr::core::{HdpOsr, HdpOsrConfig};
use hdp_osr::dataset::protocol::{OpenSetSplit, SplitConfig};
use hdp_osr::dataset::synthetic::toy2d;
use hdp_osr::eval::metrics::micro_f_measure;
use hdp_osr::hdp::{Hdp, HdpConfig};
use hdp_osr::linalg::{Cholesky, Matrix};
use hdp_osr::stats::{NiwParams, NiwPosterior};
use hdp_osr::svm::{BinarySvm, Kernel, SvmParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn linalg_is_reachable() {
    let a = Matrix::from_rows(&[vec![2.0, 0.5], vec![0.5, 1.0]]);
    let ch = Cholesky::factor(&a).unwrap();
    assert!(ch.log_det().is_finite());
}

#[test]
fn stats_is_reachable() {
    let p = NiwParams::new(vec![0.0; 2], 1.0, 4.0, Matrix::identity(2)).unwrap();
    let mut post = NiwPosterior::from_prior(&p);
    post.add(&[1.0, -1.0]);
    assert!(post.predictive_logpdf(&[0.5, 0.0]).is_finite());
}

#[test]
fn svm_is_reachable() {
    let pts = [vec![1.0, 0.0], vec![-1.0, 0.0]];
    let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
    let svm = BinarySvm::train(&refs, &[true, false], &SvmParams::new(1.0, Kernel::Linear))
        .unwrap();
    assert!(svm.predict(&[3.0, 0.0]));
}

#[test]
fn hdp_is_reachable() {
    let p = NiwParams::new(vec![0.0; 2], 1.0, 4.0, Matrix::identity(2)).unwrap();
    let groups = vec![vec![vec![0.0, 0.0], vec![0.1, 0.1], vec![5.0, 5.0]]];
    let cfg = HdpConfig { iterations: 2, ..Default::default() };
    let mut hdp = Hdp::new(p, cfg, groups).unwrap();
    hdp.run(&mut StdRng::seed_from_u64(1));
    assert!(hdp.n_dishes() >= 1);
}

#[test]
fn full_pipeline_through_the_facade() {
    let mut rng = StdRng::seed_from_u64(5);
    let data = toy2d(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(2, 2), &mut rng).unwrap();

    // The paper's model…
    let cfg = HdpOsrConfig { iterations: 6, ..Default::default() };
    let model = HdpOsr::fit(&cfg, &split.train).unwrap();
    let hdp_preds = model.classify(&split.test.points, &mut rng).unwrap();
    let hdp_f = micro_f_measure(&hdp_preds, &split.test.truth);

    // …against one baseline, end to end.
    let (pts, labels) = split.train.flattened();
    let osnn = Osnn::train(&pts, &labels, 2, &OsnnParams::default()).unwrap();
    let osnn_preds = osnn.predict_batch(&split.test.points);
    let osnn_f = micro_f_measure(&osnn_preds, &split.test.truth);

    assert!((0.0..=1.0).contains(&hdp_f));
    assert!((0.0..=1.0).contains(&osnn_f));
    // On the trivially separated toy scene, HDP-OSR should be excellent.
    assert!(hdp_f > 0.8, "HDP-OSR F = {hdp_f:.3} on the toy scene");
}
