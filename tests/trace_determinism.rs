//! Golden-trace determinism suite: the observability stream is a pure
//! function of `(data, config, seed)`.
//!
//! Three layers of lock-in:
//!
//! 1. **Committed goldens** — the first and last [`SweepTrace`] of a seeded
//!    fit, its convergence diagnostics, and the full batch-trace JSONL
//!    stream of a seeded `classify_batches` run are compared byte-for-byte
//!    against files in `tests/goldens/`. Any change to the sampler's RNG
//!    consumption, the seating order, or the trace schema shows up as a
//!    golden diff. Regenerate deliberately with `UPDATE_GOLDENS=1`.
//! 2. **Worker-count independence** — the same stream must come out of 1,
//!    2, and 8 workers.
//! 3. **Run-to-run identity** — two identical seeded runs in one process
//!    produce identical streams.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use hdp_osr::core::{
    batch_trace_id, BatchServer, HdpOsr, HdpOsrConfig, RingSink, ServingMode, TraceRecord,
};
use hdp_osr::dataset::protocol::TrainSet;
use hdp_osr::stats::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 20_26;
const ITERATIONS: usize = 12;
const DECISION_SWEEPS: usize = 3;

fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            vec![
                cx + 0.5 * sampling::standard_normal(rng),
                cy + 0.5 * sampling::standard_normal(rng),
            ]
        })
        .collect()
}

/// The suite's fixed scene: two separated known classes, four batches
/// (known / known / unknown / mixed). Everything derives from literal seeds,
/// so the traces below are reproducible in any order and any process.
fn model_and_batches() -> (HdpOsr, Vec<Vec<Vec<f64>>>) {
    let mut rng = StdRng::seed_from_u64(314);
    let train = TrainSet {
        class_ids: vec![1, 2],
        classes: vec![blob(&mut rng, -6.0, 0.0, 40), blob(&mut rng, 6.0, 0.0, 40)],
    };
    let config = HdpOsrConfig {
        iterations: ITERATIONS,
        decision_sweeps: DECISION_SWEEPS,
        serving: ServingMode::WarmStart,
        ..Default::default()
    };
    let model = HdpOsr::fit(&config, &train).expect("clean fit");
    let batches = vec![
        blob(&mut rng, -6.0, 0.0, 12),
        blob(&mut rng, 6.0, 0.0, 12),
        blob(&mut rng, 0.0, 9.0, 12),
        {
            let mut mixed = blob(&mut rng, -6.0, 0.0, 6);
            mixed.extend(blob(&mut rng, 0.0, 9.0, 6));
            mixed
        },
    ];
    (model, batches)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name)
}

/// Compare `actual` against the committed golden, or rewrite the golden
/// when `UPDATE_GOLDENS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::create_dir_all(path.parent().expect("goldens dir has a parent")).expect("mkdir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden `{name}` ({e}); regenerate with UPDATE_GOLDENS=1")
    });
    assert_eq!(actual, expected, "golden `{name}` drifted; see tests/goldens/");
}

/// Serve the suite's batches and return the sink's JSONL lines, one per
/// batch, in batch-index order.
fn trace_lines(model: &HdpOsr, batches: &[Vec<Vec<f64>>], workers: usize) -> Vec<String> {
    let sink = Arc::new(RingSink::new(64));
    let results = BatchServer::with_workers(model, workers)
        .with_trace_sink(sink.clone())
        .classify_batches(batches, SEED);
    for (idx, result) in results.iter().enumerate() {
        let outcome = result.as_ref().expect("healthy batch");
        assert_eq!(outcome.trace_id, batch_trace_id(SEED, idx), "outcome/trace id mismatch");
    }
    sink.records().iter().map(TraceRecord::to_jsonl).collect()
}

#[test]
fn fit_trace_matches_committed_goldens() {
    let (model, _) = model_and_batches();
    let report = model.fit_report().expect("warm fit keeps its report");
    assert_eq!(report.trace.len(), ITERATIONS, "one trace per burn-in sweep");
    assert_eq!(report.train_seed, 42, "the default train seed");

    let first = serde_json::to_string(&report.trace[0]).unwrap();
    let last = serde_json::to_string(report.trace.last().unwrap()).unwrap();
    let diagnostics = serde_json::to_string(&report.diagnostics).unwrap();
    check_golden("fit_first_sweep.json", &first);
    check_golden("fit_last_sweep.json", &last);
    check_golden("fit_diagnostics.json", &diagnostics);
}

#[test]
fn fit_report_surfaces_sane_convergence_diagnostics() {
    let (model, _) = model_and_batches();
    let report = model.fit_report().expect("warm fit keeps its report");
    let d = &report.diagnostics;
    assert_eq!(d.n, ITERATIONS);
    assert!(d.rhat.is_finite() && d.rhat > 0.0, "rhat = {}", d.rhat);
    assert!((1.0..=ITERATIONS as f64).contains(&d.ess), "ess = {}", d.ess);
    assert!(d.burn_in <= ITERATIONS / 2, "burn_in = {}", d.burn_in);

    // The trace itself is coherent: sweep indices count up, structural
    // counts stay positive once seated, wall times are populated live.
    for (i, t) in report.trace.iter().enumerate() {
        assert_eq!(t.sweep, i);
        assert!(t.log_likelihood.is_finite());
        assert!(t.n_dishes >= 1 && t.total_tables >= t.n_dishes);
        assert_eq!(t.tables_per_group.len(), 2, "one entry per training group");
        assert!(t.seat_moves > 0, "a sweep reseats every item at least once");
    }
}

#[test]
fn batch_trace_stream_matches_committed_golden() {
    let (model, batches) = model_and_batches();
    let stream = trace_lines(&model, &batches, 2).join("\n");
    check_golden("batch_stream.jsonl", &stream);
}

#[test]
fn batch_traces_are_identical_across_worker_counts() {
    let (model, batches) = model_and_batches();
    let one = trace_lines(&model, &batches, 1);
    assert_eq!(one.len(), batches.len(), "one record per batch");
    assert_eq!(one, trace_lines(&model, &batches, 2), "1 vs 2 workers");
    assert_eq!(one, trace_lines(&model, &batches, 8), "1 vs 8 workers");
}

#[test]
fn identical_seeded_runs_produce_identical_streams() {
    let (model, batches) = model_and_batches();
    assert_eq!(trace_lines(&model, &batches, 4), trace_lines(&model, &batches, 4));
}

#[test]
fn batch_records_roundtrip_and_carry_the_decision_sweeps() {
    let (model, batches) = model_and_batches();
    for (idx, line) in trace_lines(&model, &batches, 2).iter().enumerate() {
        let record = TraceRecord::from_jsonl(line).expect("stream lines parse back");
        let TraceRecord::Batch(trace) = record else {
            panic!("batch serving emits Batch records only");
        };
        assert_eq!(trace.batch, idx);
        assert_eq!(trace.trace_id, batch_trace_id(SEED, idx));
        assert_eq!(trace.attempts, 1, "healthy batches serve first try");
        assert!(!trace.inherited_poison, "workers must start every batch clean");
        assert_eq!(trace.sweeps.len(), DECISION_SWEEPS);
        for (s, sweep) in trace.sweeps.iter().enumerate() {
            assert_eq!(sweep.sweep, s, "session-local sweep indices");
            assert_eq!(sweep.wall_ns, 0, "wall time never enters the stream");
            assert!(sweep.log_likelihood.is_finite());
            assert_eq!(
                sweep.tables_per_group.len(),
                3,
                "two training groups plus the batch group"
            );
        }
    }
}

#[test]
fn adhoc_classification_is_tagged_adhoc() {
    let (model, batches) = model_and_batches();
    let mut rng = StdRng::seed_from_u64(5);
    let outcome = model.classify_detailed(&batches[0], &mut rng).expect("healthy batch");
    assert_eq!(outcome.trace_id, "adhoc");
}
