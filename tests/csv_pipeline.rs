//! Integration: CSV ingestion feeding the full open-set pipeline — the
//! downstream-user path exercised end to end (parse → split → train →
//! predict → score).

use hdp_osr::dataset::csv::{read_csv, write_csv};
use hdp_osr::dataset::protocol::{OpenSetSplit, SplitConfig};
use hdp_osr::eval::methods::MethodSpec;
use hdp_osr::eval::metrics::OpenSetConfusion;
use osr_baselines::OsnnParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Cursor;

/// Deterministic 4-class CSV in 2-d.
fn demo_csv() -> String {
    let mut out = String::from("x,y,label\n");
    let mut state = 0x1234_5678_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let centers = [("north", 0.0, 8.0), ("south", 0.0, -8.0), ("east", 8.0, 0.0), ("west", -8.0, 0.0)];
    for (name, cx, cy) in centers {
        for _ in 0..30 {
            out.push_str(&format!("{:.4},{:.4},{name}\n", cx + next() * 1.5, cy + next() * 1.5));
        }
    }
    out
}

#[test]
fn csv_to_open_set_scores() {
    let parsed = read_csv(Cursor::new(demo_csv()), "demo").unwrap();
    assert_eq!(parsed.dataset.n_classes, 4);
    assert_eq!(parsed.label_names, vec!["north", "south", "east", "west"]);

    let mut rng = StdRng::seed_from_u64(3);
    let split =
        OpenSetSplit::sample(&parsed.dataset, &SplitConfig::new(2, 2), &mut rng).unwrap();
    // σ = 0.5: the four centers form a square, so an unknown corner sits at
    // distance ratio ~0.7 between the two known corners — the default σ of
    // 0.8 would (correctly per Eq. 3, wrongly per ground truth) accept it.
    let spec = MethodSpec::Osnn(OsnnParams { sigma: 0.5 });
    let preds = spec.run_trial(&split.train, &split.test.points, 1, 0).unwrap();
    let c = OpenSetConfusion::from_slices(&preds, &split.test.truth);
    assert!(c.f_measure() > 0.9, "F = {:.3}", c.f_measure());
}

#[test]
fn csv_roundtrip_preserves_split_behaviour() {
    let parsed = read_csv(Cursor::new(demo_csv()), "demo").unwrap();
    let mut buf = Vec::new();
    write_csv(&parsed.dataset, &mut buf).unwrap();
    let reparsed = read_csv(Cursor::new(String::from_utf8(buf).unwrap()), "demo2").unwrap();
    assert_eq!(reparsed.dataset.points, parsed.dataset.points);
    assert_eq!(reparsed.dataset.labels, parsed.dataset.labels);

    // Same seed ⇒ same split on both copies.
    let a = OpenSetSplit::sample(
        &parsed.dataset,
        &SplitConfig::new(2, 1),
        &mut StdRng::seed_from_u64(9),
    )
    .unwrap();
    let b = OpenSetSplit::sample(
        &reparsed.dataset,
        &SplitConfig::new(2, 1),
        &mut StdRng::seed_from_u64(9),
    )
    .unwrap();
    assert_eq!(a.train.class_ids, b.train.class_ids);
    assert_eq!(a.test.points, b.test.points);
}

#[test]
fn hdp_osr_works_from_csv_input() {
    let parsed = read_csv(Cursor::new(demo_csv()), "demo").unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let split =
        OpenSetSplit::sample(&parsed.dataset, &SplitConfig::new(2, 2), &mut rng).unwrap();
    let cfg = hdp_osr::core::HdpOsrConfig { iterations: 8, ..Default::default() };
    let spec = MethodSpec::HdpOsr(cfg);
    let preds = spec.run_trial(&split.train, &split.test.points, 2, 0).unwrap();
    let c = OpenSetConfusion::from_slices(&preds, &split.test.truth);
    assert!(c.accuracy() > 0.85, "accuracy = {:.3}", c.accuracy());
}
