//! Acceptance suite for the fault-tolerant serving stack, driven by the
//! deterministic `fault-inject` harness.
//!
//! The contract under test: a fault in one batch — a worker panic, a
//! numerically divergent sampler, a NaN slipped in before admission, an
//! artificial stall — must (a) surface on that batch as a typed error or a
//! flagged degraded outcome, and (b) leave every sibling batch *bit-identical*
//! to an uninjected run, because per-batch RNG isolation means a fault cannot
//! leak across slots.
//!
//! Fault plans are process-global, so every test (including the baseline
//! runs) serializes on one lock.

#![cfg(feature = "fault-inject")]

use std::sync::{Arc, Mutex};
use std::time::Duration;

use hdp_osr::baselines::{BaselineSpec, OsnnParams, ServedBaseline};
use hdp_osr::core::{
    derive_batch_seed, BatchServer, ClassifyOutcome, DegradeReason, HdpOsr, HdpOsrConfig,
    OsrError, Prediction, RetryPolicy, RingSink, ServePolicy, ServedVia, ServingMode,
    TraceRecord,
};
use hdp_osr::dataset::protocol::TrainSet;
use hdp_osr::stats::counters;
use hdp_osr::stats::faults::{install, sites, Fault, FaultPlan};
use hdp_osr::stats::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serializes every test in this binary: fault plans are process-global.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            vec![
                cx + 0.5 * sampling::standard_normal(rng),
                cy + 0.5 * sampling::standard_normal(rng),
            ]
        })
        .collect()
}

/// A warm-start model over two separated classes, plus four test batches
/// mixing known and unknown points.
fn warm_model_and_batches() -> (HdpOsr, Vec<Vec<Vec<f64>>>) {
    let mut rng = StdRng::seed_from_u64(97);
    let train = TrainSet {
        class_ids: vec![1, 2],
        classes: vec![blob(&mut rng, -6.0, 0.0, 40), blob(&mut rng, 6.0, 0.0, 40)],
    };
    let config = HdpOsrConfig {
        iterations: 10,
        decision_sweeps: 3,
        serving: ServingMode::WarmStart,
        ..Default::default()
    };
    let model = HdpOsr::fit(&config, &train).expect("clean fit");
    let batches = vec![
        blob(&mut rng, -6.0, 0.0, 12),
        blob(&mut rng, 6.0, 0.0, 12),
        blob(&mut rng, 0.0, 9.0, 12),
        {
            let mut mixed = blob(&mut rng, -6.0, 0.0, 6);
            mixed.extend(blob(&mut rng, 0.0, 9.0, 6));
            mixed
        },
    ];
    (model, batches)
}

const SEED: u64 = 4242;

fn serve(
    model: &HdpOsr,
    batches: &[Vec<Vec<f64>>],
    policy: ServePolicy,
) -> Vec<Result<ClassifyOutcome, OsrError>> {
    BatchServer::with_workers(model, 2).with_policy(policy).classify_batches(batches, SEED)
}

/// Bit-exact identity of two healthy outcomes: identical predictions,
/// identical dish seating, and the joint log-likelihood equal to the bit.
fn assert_bit_identical(a: &ClassifyOutcome, b: &ClassifyOutcome, which: &str) {
    assert_eq!(a.predictions, b.predictions, "{which}: predictions drifted");
    assert_eq!(a.test_dishes, b.test_dishes, "{which}: dish seating drifted");
    assert_eq!(
        a.log_likelihood.to_bits(),
        b.log_likelihood.to_bits(),
        "{which}: log-likelihood drifted"
    );
    assert_eq!(a.attempts, b.attempts, "{which}: attempt count drifted");
    assert_eq!(a.served_via, b.served_via, "{which}: serving path drifted");
}

#[test]
fn injected_panic_is_isolated_to_its_batch() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (model, batches) = warm_model_and_batches();
    let baseline = serve(&model, &batches, ServePolicy::default());

    let _plan = install(FaultPlan::new().inject(
        sites::ATTEMPT,
        Some(1),
        None,
        Fault::Panic { message: "injected worker panic".into() },
    ));
    let faulted = serve(&model, &batches, ServePolicy::default());

    match faulted[1].as_ref().unwrap_err() {
        OsrError::Internal(msg) => {
            assert!(msg.contains("injected worker panic"), "message was: {msg}");
        }
        other => panic!("expected Internal from a panicking batch, got {other:?}"),
    }
    for idx in [0usize, 2, 3] {
        assert_bit_identical(
            faulted[idx].as_ref().unwrap(),
            baseline[idx].as_ref().unwrap(),
            &format!("sibling batch {idx} of a panicked batch"),
        );
    }
}

#[test]
fn injected_cholesky_divergence_degrades_after_exhausting_retries() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (model, batches) = warm_model_and_batches();
    let policy = ServePolicy {
        retry: RetryPolicy { max_attempts: 3, reseed: true },
        ..Default::default()
    };
    let baseline = serve(&model, &batches, policy);

    let retries_before = counters::serve_retries();
    let degraded_before = counters::degraded_batches();
    // Every attempt of batch 2 trips the Cholesky jitter ladder, so the
    // retry policy runs dry and the batch falls back to frozen inference.
    let _plan = install(FaultPlan::new().inject(
        sites::CHOLESKY,
        Some(2),
        None,
        Fault::CholeskyFail,
    ));
    let faulted = serve(&model, &batches, policy);

    let outcome = faulted[2].as_ref().expect("degradation answers instead of erroring");
    assert_eq!(
        outcome.served_via,
        ServedVia::Degraded { reason: DegradeReason::RetriesExhausted }
    );
    assert_eq!(outcome.attempts, 3, "all allowed attempts must be consumed");
    assert_eq!(outcome.predictions.len(), batches[2].len());
    // Batch 2 is the unknown blob; frozen inference must still reject it.
    let unknown = outcome.predictions.iter().filter(|p| **p == Prediction::Unknown).count();
    assert!(unknown >= 10, "degraded rejection: {unknown}/12 unknown");

    assert_eq!(
        counters::serve_retries() - retries_before,
        2,
        "3 attempts = 2 recorded retries"
    );
    assert_eq!(counters::degraded_batches() - degraded_before, 1);

    for idx in [0usize, 1, 3] {
        assert_bit_identical(
            faulted[idx].as_ref().unwrap(),
            baseline[idx].as_ref().unwrap(),
            &format!("sibling batch {idx} of a diverging batch"),
        );
    }
}

#[test]
fn retryable_divergence_recovers_within_the_attempt_budget() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (model, batches) = warm_model_and_batches();

    let retries_before = counters::serve_retries();
    // Only attempt 0 of batch 0 diverges; the reseeded attempt 1 is healthy.
    let _plan = install(FaultPlan::new().inject(
        sites::ENGINE_SWEEP,
        Some(0),
        Some(0),
        Fault::Diverge,
    ));
    let results = serve(&model, &batches, ServePolicy::default());

    let outcome = results[0].as_ref().expect("retry must rescue a transient divergence");
    assert_eq!(outcome.served_via, ServedVia::Warm, "full service, not degraded");
    assert_eq!(outcome.attempts, 2, "one failed attempt + one successful retry");
    assert_eq!(outcome.predictions.len(), batches[0].len());
    assert_eq!(counters::serve_retries() - retries_before, 1);

    // The retry reseeds with `derive_batch_seed(seed, 0) ^ 1`; the outcome
    // must match a sequential single-shot run under exactly that seed.
    let mut rng = StdRng::seed_from_u64(derive_batch_seed(SEED, 0) ^ 1);
    let sequential = model.classify(&batches[0], &mut rng).unwrap();
    assert_eq!(outcome.predictions, sequential);
}

#[test]
fn injected_nan_is_rejected_by_admission_control() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (model, batches) = warm_model_and_batches();

    let _plan = install(FaultPlan::new().inject(
        sites::ADMISSION,
        Some(3),
        None,
        Fault::NanPoint { point: 5, coord: 1 },
    ));
    let results = serve(&model, &batches, ServePolicy::default());

    assert_eq!(
        results[3].as_ref().unwrap_err(),
        &OsrError::NonFiniteFeature { point: 5, coord: 1 },
        "the NaN must be caught before any sampler state is touched"
    );
    for idx in [0usize, 1, 2] {
        assert!(results[idx].is_ok(), "sibling batch {idx} must still serve");
    }
}

#[test]
fn injected_stall_trips_the_deadline_into_degraded_service() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (model, batches) = warm_model_and_batches();
    let policy = ServePolicy {
        deadline: Some(Duration::from_millis(5)),
        ..Default::default()
    };

    let degraded_before = counters::degraded_batches();
    // Every sweep of batch 1 sleeps 25 ms, so the 5 ms deadline passes
    // before the first sweep is admitted.
    let _plan = install(FaultPlan::new().inject(
        sites::SWEEP,
        Some(1),
        None,
        Fault::DelayMs(25),
    ));
    let results = serve(&model, &batches, policy);

    let outcome = results[1].as_ref().expect("deadline breach degrades, not errors");
    assert_eq!(
        outcome.served_via,
        ServedVia::Degraded { reason: DegradeReason::DeadlineExceeded }
    );
    assert_eq!(outcome.predictions.len(), batches[1].len());
    assert!(counters::degraded_batches() > degraded_before);
    for idx in [0usize, 2, 3] {
        assert!(results[idx].is_ok(), "sibling batch {idx} must still serve");
    }
}

#[test]
fn degraded_batch_leaves_no_poison_for_the_next_batch_on_its_worker() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (model, batches) = warm_model_and_batches();
    let baseline = serve(&model, &batches, ServePolicy::default());

    // A single worker serves the batches in order, so batch 0's degraded
    // service shares its thread — and any leaked thread-local poison — with
    // every later batch. The injected Cholesky failure poisons the flag on
    // each of batch 0's attempts *and* during its degraded frozen inference;
    // the server must scrub it before the worker claims batch 1.
    let sink = Arc::new(RingSink::new(16));
    let _plan = install(FaultPlan::new().inject(
        sites::CHOLESKY,
        Some(0),
        None,
        Fault::CholeskyFail,
    ));
    let results = BatchServer::with_workers(&model, 1)
        .with_trace_sink(sink.clone())
        .classify_batches(&batches, SEED);

    let degraded = results[0].as_ref().expect("batch 0 degrades, not errors");
    assert!(degraded.served_via.is_degraded());
    for idx in [1usize, 2, 3] {
        assert_bit_identical(
            results[idx].as_ref().unwrap(),
            baseline[idx].as_ref().unwrap(),
            &format!("batch {idx} served after a degraded batch on the same worker"),
        );
    }

    let records = sink.records();
    assert_eq!(records.len(), batches.len(), "one trace record per answered batch");
    for record in &records {
        let TraceRecord::Batch(trace) = record else {
            panic!("batch serving must emit Batch records only");
        };
        assert!(
            !trace.inherited_poison,
            "batch {} started with poison inherited from an earlier batch",
            trace.batch
        );
    }
    let TraceRecord::Batch(first) = &records[0] else { unreachable!() };
    assert_eq!(first.attempts, 3, "degraded record keeps the failed attempt count");
    assert!(first.sweeps.is_empty(), "frozen inference runs no sweeps");
    assert_eq!(first.served_via, degraded.served_via);
}

/// An OSNN baseline behind the same serving stack as the CD-OSR tests above.
fn served_osnn_and_batches() -> (ServedBaseline, Vec<Vec<Vec<f64>>>) {
    let mut rng = StdRng::seed_from_u64(97);
    let train = TrainSet {
        class_ids: vec![0, 1],
        classes: vec![blob(&mut rng, -6.0, 0.0, 40), blob(&mut rng, 6.0, 0.0, 40)],
    };
    let served =
        ServedBaseline::train(BaselineSpec::Osnn(OsnnParams::default()), &train).unwrap();
    let batches = vec![
        blob(&mut rng, -6.0, 0.0, 12),
        blob(&mut rng, 6.0, 0.0, 12),
        blob(&mut rng, 0.0, 9.0, 12),
    ];
    (served, batches)
}

#[test]
fn baseline_divergence_degrades_to_the_deterministic_fallback() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (served, batches) = served_osnn_and_batches();
    let healthy = BatchServer::with_workers(&served, 2).classify_batches(&batches, SEED);

    let retries_before = counters::serve_retries();
    let degraded_before = counters::degraded_batches();
    // Every attempt of batch 1 diverges at the baseline's classify site, so
    // the retry policy runs dry. Baselines are not reseedable, but their
    // frozen fallback is the normal deterministic computation — degraded
    // service must answer with the same predictions a healthy run produces.
    let _plan = install(FaultPlan::new().inject(
        sites::BASELINE_CLASSIFY,
        Some(1),
        None,
        Fault::Diverge,
    ));
    let faulted = BatchServer::with_workers(&served, 2).classify_batches(&batches, SEED);

    let outcome = faulted[1].as_ref().expect("degradation answers instead of erroring");
    assert_eq!(
        outcome.served_via,
        ServedVia::Degraded { reason: DegradeReason::RetriesExhausted }
    );
    assert_eq!(outcome.attempts, 3, "all allowed attempts must be consumed");
    assert_eq!(outcome.method, "osnn");
    assert_eq!(outcome.predictions, healthy[1].as_ref().unwrap().predictions);
    assert_eq!(counters::serve_retries() - retries_before, 2, "3 attempts = 2 retries");
    assert_eq!(counters::degraded_batches() - degraded_before, 1);
    for idx in [0usize, 2] {
        assert_eq!(
            faulted[idx].as_ref().unwrap().predictions,
            healthy[idx].as_ref().unwrap().predictions,
            "sibling batch {idx} of a diverging baseline batch"
        );
    }
}

#[test]
fn baseline_transient_divergence_recovers_on_retry() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (served, batches) = served_osnn_and_batches();
    let healthy = BatchServer::with_workers(&served, 2).classify_batches(&batches, SEED);

    let retries_before = counters::serve_retries();
    // Only attempt 0 of batch 0 diverges; the retry (same seed — baselines
    // are deterministic, so reseeding is pointless and disabled by the
    // capability flags) completes full service.
    let _plan = install(FaultPlan::new().inject(
        sites::BASELINE_CLASSIFY,
        Some(0),
        Some(0),
        Fault::Diverge,
    ));
    let results = BatchServer::with_workers(&served, 2).classify_batches(&batches, SEED);

    let outcome = results[0].as_ref().expect("retry must rescue a transient divergence");
    assert_eq!(outcome.served_via, ServedVia::Warm, "full service, not degraded");
    assert_eq!(outcome.attempts, 2, "one failed attempt + one successful retry");
    assert_eq!(outcome.predictions, healthy[0].as_ref().unwrap().predictions);
    assert_eq!(counters::serve_retries() - retries_before, 1);
}

#[test]
fn baseline_panic_is_isolated_to_its_batch() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (served, batches) = served_osnn_and_batches();

    let _plan = install(FaultPlan::new().inject(
        sites::BASELINE_CLASSIFY,
        Some(2),
        None,
        Fault::Panic { message: "injected baseline panic".into() },
    ));
    let results = BatchServer::with_workers(&served, 2).classify_batches(&batches, SEED);

    match results[2].as_ref().unwrap_err() {
        OsrError::Internal(msg) => {
            assert!(msg.contains("injected baseline panic"), "message was: {msg}");
        }
        other => panic!("expected Internal from a panicking batch, got {other:?}"),
    }
    for idx in [0usize, 1] {
        assert!(results[idx].is_ok(), "sibling batch {idx} must still serve");
    }
}

#[test]
fn sweep_budget_exhaustion_degrades_mid_service() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (model, batches) = warm_model_and_batches();
    // One sweep allowed, three decision sweeps needed: the first attempt
    // runs out of budget mid-service and frozen inference answers.
    let policy = ServePolicy { sweep_budget: Some(1), ..Default::default() };

    let results = serve(&model, &batches, policy);
    for (idx, result) in results.iter().enumerate() {
        let outcome = result.as_ref().expect("budget breach degrades, not errors");
        assert_eq!(
            outcome.served_via,
            ServedVia::Degraded { reason: DegradeReason::SweepBudgetExceeded },
            "batch {idx}"
        );
        assert_eq!(outcome.predictions.len(), batches[idx].len(), "batch {idx}");
    }
}

// ---------------------------------------------------------------------------
// Durable snapshot faults: mid-save crashes, in-flight load corruption, and
// falsified checksums must surface as typed errors, keep the last-good file
// authoritative, and leave the durable degrade rung serving where possible.
// ---------------------------------------------------------------------------

use hdp_osr::core::{CollectiveModel, SnapshotStore};

/// A unique-per-test store path under the system temp directory.
fn temp_snapshot_store(name: &str) -> SnapshotStore {
    let dir = std::env::temp_dir().join(format!("osr_fault_snap_{}", std::process::id()));
    SnapshotStore::new(dir.join(format!("{name}.bin")))
}

#[test]
fn mid_save_crash_preserves_the_last_good_snapshot() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (model, _) = warm_model_and_batches();
    let store = temp_snapshot_store("mid_save_crash");
    store.save(&model).expect("healthy first save");
    let last_good = store.load_bytes().expect("last-good bytes");

    let saves_before = counters::snapshot_saves();
    let _plan =
        install(FaultPlan::new().inject(sites::SNAPSHOT_SAVE, None, None, Fault::Corrupt));
    let err = store.save(&model).expect_err("the injected crash must abort the save");
    assert!(
        matches!(&err, OsrError::Snapshot(e) if e.to_string().contains("mid-save crash")),
        "got {err:?}"
    );
    drop(_plan);

    // The crash hit the temp file only: the last-good snapshot is untouched
    // byte-for-byte and still loads into a servable model.
    assert_eq!(store.load_bytes().unwrap(), last_good);
    let reloaded = store.load().expect("last-good snapshot still loads");
    assert_eq!(reloaded.dim(), model.dim());
    assert_eq!(counters::snapshot_saves(), saves_before, "a failed save must not count");
    let _ = std::fs::remove_file(store.path());
}

#[test]
fn load_corruption_is_a_typed_error_and_never_a_panic() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (model, _) = warm_model_and_batches();
    let store = temp_snapshot_store("load_corruption");
    store.save(&model).expect("healthy save");

    let failures_before = counters::snapshot_load_failures();
    // The injected byte flip lands after the file is read, modelling
    // in-flight corruption between disk and decoder; a section CRC (or a
    // structural check downstream of it) must reject the container.
    let _plan =
        install(FaultPlan::new().inject(sites::SNAPSHOT_LOAD, None, None, Fault::Corrupt));
    let err = store.load().expect_err("corrupted bytes must not decode");
    assert!(matches!(err, OsrError::Snapshot(_)), "typed snapshot error, got {err:?}");
    assert_eq!(counters::snapshot_load_failures(), failures_before + 1);
    drop(_plan);

    // With the fault cleared the same file loads cleanly: the corruption
    // was injected in flight, not persisted.
    store.load().expect("the on-disk file was never touched");
    let _ = std::fs::remove_file(store.path());
}

#[test]
fn falsified_checksum_is_reported_as_a_checksum_mismatch() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (model, _) = warm_model_and_batches();
    let store = temp_snapshot_store("falsified_checksum");
    store.save(&model).expect("healthy save");

    let _plan =
        install(FaultPlan::new().inject(sites::SNAPSHOT_CHECKSUM, None, None, Fault::Corrupt));
    let err = store.load().expect_err("a falsified checksum must fail verification");
    assert!(
        matches!(
            &err,
            OsrError::Snapshot(hdp_osr::stats::snapshot::SnapshotError::ChecksumMismatch { .. })
        ),
        "got {err:?}"
    );
    let _ = std::fs::remove_file(store.path());
}

// ---------------------------------------------------------------------------
// Front-end faults: a panicking micro-batch flush must be isolated to that
// micro-batch (typed errors to every waiter, sibling tenants bit-identical),
// and an enqueue fault must shed typed instead of blocking.
// ---------------------------------------------------------------------------

use hdp_osr::core::{FlushOutcome, FlushTrigger, Frontend, FrontendConfig, ModelRegistry};

/// Two tenants sharing one warm CD-OSR model; each submits a full
/// micro-batch, so dispatch serves flush seq 0 (`acme`) and 1 (`beta`).
fn coalesce_two_tenants(model: &Arc<HdpOsr>) -> Vec<FlushOutcome> {
    let registry = ModelRegistry::new(2);
    registry.insert("acme", Arc::clone(model) as Arc<dyn CollectiveModel>);
    registry.insert("beta", Arc::clone(model) as Arc<dyn CollectiveModel>);
    let mut frontend = Frontend::new(FrontendConfig {
        dim: 2,
        max_batch: 4,
        max_delay_ns: 1_000,
        max_queue_depth: 32,
        base_seed: SEED,
    })
    .expect("valid config");
    let mut rng = StdRng::seed_from_u64(58);
    for point in blob(&mut rng, -6.0, 0.0, 4) {
        frontend.enqueue("acme", point, 0).expect("admitted");
    }
    for point in blob(&mut rng, 6.0, 0.0, 4) {
        frontend.enqueue("beta", point, 5).expect("admitted");
    }
    assert_eq!(frontend.ready_batches(), 2, "both tenants size-flushed");
    frontend.dispatch(&registry, 2, &ServePolicy::default(), None)
}

#[test]
fn panicking_flush_is_isolated_to_its_micro_batch() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (model, _) = warm_model_and_batches();
    let model = Arc::new(model);
    let baseline = coalesce_two_tenants(&model);

    // Flush seq 0 is `acme`'s micro-batch: its serve panics outright.
    let _plan = install(FaultPlan::new().inject(
        sites::FRONTEND_FLUSH,
        Some(0),
        None,
        Fault::Panic { message: "injected flush panic".into() },
    ));
    let faulted = coalesce_two_tenants(&model);
    assert_eq!(faulted.len(), 2);

    // Every waiter of the failed micro-batch gets the typed error — no
    // waiter is dropped, none blocks.
    let acme = &faulted[0];
    assert_eq!(acme.tenant, "acme");
    assert_eq!(acme.trigger, FlushTrigger::Size);
    assert_eq!(acme.responses.len(), 4, "all four waiters are answered");
    match acme.outcome.as_ref().unwrap_err() {
        OsrError::Internal(msg) => {
            assert!(msg.contains("injected flush panic"), "message was: {msg}");
        }
        other => panic!("expected Internal from a panicking flush, got {other:?}"),
    }
    for response in &acme.responses {
        match response.result.as_ref().unwrap_err() {
            OsrError::Internal(msg) => {
                assert!(msg.contains("injected flush panic"), "message was: {msg}");
            }
            other => panic!("waiter must see the typed flush error, got {other:?}"),
        }
    }

    // The sibling tenant's micro-batch — served in the same dispatch round,
    // possibly on the same worker — is bit-identical to the uninjected run.
    let beta = &faulted[1];
    assert_eq!(beta.tenant, "beta");
    assert_bit_identical(
        beta.outcome.as_ref().unwrap(),
        baseline[1].outcome.as_ref().unwrap(),
        "sibling tenant of a panicked micro-batch",
    );
    assert_eq!(
        beta.responses.iter().map(|r| *r.result.as_ref().unwrap()).collect::<Vec<_>>(),
        baseline[1]
            .responses
            .iter()
            .map(|r| *r.result.as_ref().unwrap())
            .collect::<Vec<_>>(),
        "sibling waiters' answers drifted"
    );
}

#[test]
fn enqueue_fault_sheds_typed_instead_of_blocking() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut frontend = Frontend::new(FrontendConfig {
        dim: 2,
        max_batch: 8,
        max_delay_ns: 1_000,
        max_queue_depth: 32,
        base_seed: SEED,
    })
    .expect("valid config");

    assert_eq!(frontend.enqueue("acme", vec![0.0, 0.0], 0).expect("healthy"), 0);
    assert_eq!(frontend.enqueue("acme", vec![0.1, 0.0], 1).expect("healthy"), 1);

    // The fault context at the enqueue site is the would-be request id:
    // request 2's admission is forced onto the shed path.
    let shed_before = counters::frontend_shed();
    let plan =
        install(FaultPlan::new().inject(sites::FRONTEND_ENQUEUE, Some(2), None, Fault::Corrupt));
    match frontend.enqueue("acme", vec![0.2, 0.0], 2) {
        Err(OsrError::Overloaded { tenant, depth }) => {
            assert_eq!(tenant, "acme");
            assert_eq!(depth, 2, "the backlog depth at rejection time");
        }
        other => panic!("expected a typed Overloaded shed, got {other:?}"),
    }
    assert_eq!(counters::frontend_shed() - shed_before, 1);
    drop(plan);

    // A shed consumes no request id and poisons nothing: admission resumes
    // with the same id once the fault clears.
    assert_eq!(frontend.enqueue("acme", vec![0.2, 0.0], 3).expect("healthy again"), 2);
    assert_eq!(frontend.pending_requests(), 3);
}

#[test]
fn cold_model_divergence_recovers_from_the_durable_snapshot() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The store holds a warm model's checkpoint; the *serving* model is
    // cold-started, so it has no in-memory frozen fallback — before this PR
    // its exhausted batches could only error out.
    let (warm_model, batches) = warm_model_and_batches();
    let store = Arc::new(temp_snapshot_store("durable_recovery"));
    store.save(&warm_model).expect("healthy save");

    let mut rng = StdRng::seed_from_u64(97);
    let train = TrainSet {
        class_ids: vec![1, 2],
        classes: vec![blob(&mut rng, -6.0, 0.0, 40), blob(&mut rng, 6.0, 0.0, 40)],
    };
    let cold_config = HdpOsrConfig {
        iterations: 10,
        decision_sweeps: 3,
        serving: ServingMode::ColdStart,
        ..Default::default()
    };
    let cold_model = HdpOsr::fit(&cold_config, &train).expect("clean cold fit");

    let recoveries_before = counters::durable_recoveries();
    let degraded_before = counters::degraded_batches();
    // Every attempt of batch 2 diverges; with no frozen fallback the degrade
    // ladder's last rung reloads the durable snapshot and serves from it.
    let _plan =
        install(FaultPlan::new().inject(sites::ENGINE_SWEEP, Some(2), None, Fault::Diverge));
    let results = BatchServer::with_workers(&cold_model, 2)
        .with_snapshot_store(store.clone())
        .classify_batches(&batches, SEED);

    let outcome = results[2].as_ref().expect("durable recovery answers instead of erroring");
    assert_eq!(
        outcome.served_via,
        ServedVia::Degraded { reason: DegradeReason::RetriesExhausted }
    );
    assert_eq!(outcome.attempts, 3, "all allowed attempts must be consumed first");
    assert_eq!(counters::durable_recoveries() - recoveries_before, 1);
    assert_eq!(counters::degraded_batches() - degraded_before, 1);

    // The durable answer is exactly what the warm model's frozen fallback
    // would have said: recovery reconstructs the same checkpoint.
    let frozen = warm_model
        .classify_frozen(&batches[2], DegradeReason::RetriesExhausted, 3)
        .expect("warm model freezes");
    assert_eq!(outcome.predictions, frozen.predictions);
    assert_eq!(outcome.test_dishes, frozen.test_dishes);
    assert_eq!(outcome.log_likelihood.to_bits(), frozen.log_likelihood.to_bits());

    // Sibling batches still served full collective decisions.
    for idx in [0usize, 1, 3] {
        assert_eq!(results[idx].as_ref().unwrap().served_via, ServedVia::Cold, "batch {idx}");
    }
    drop(_plan);

    // Without a usable snapshot the same failure surfaces as the typed
    // divergence error — corrupted durable state must not panic the server.
    let _ = std::fs::remove_file(store.path());
    let _plan =
        install(FaultPlan::new().inject(sites::ENGINE_SWEEP, Some(2), None, Fault::Diverge));
    let results = BatchServer::with_workers(&cold_model, 2)
        .with_snapshot_store(store.clone())
        .classify_batches(&batches, SEED);
    assert!(
        matches!(results[2].as_ref().unwrap_err(), OsrError::Diverged { .. }),
        "missing snapshot: degrade ladder exhausted, typed error"
    );
}
