//! Durable snapshot acceptance suite: round-trip byte identity, the
//! corruption taxonomy, atomic last-good-wins persistence, and the
//! replica-fleet byte-identity proof.
//!
//! The central claims under test:
//!
//! 1. **Round-trip determinism** — `save → load → re-save` reproduces the
//!    container byte-for-byte, and a reloaded model serves bit-identically
//!    to the model that wrote it.
//! 2. **Corruption safety** — every way a snapshot file can rot
//!    (truncation, bit-flips, version skew, foreign method, trailing
//!    garbage) yields a typed [`SnapshotError`], never a panic.
//! 3. **Fleet identity** — several `BatchServer` replicas loading the *same
//!    snapshot file* and serving the same traffic emit byte-identical trace
//!    streams (committed golden: `tests/goldens/replica_stream.jsonl`), and
//!    partitioning the traffic across replicas reproduces the exact
//!    outcomes of one replica serving everything.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use hdp_osr::core::{
    derive_batch_seed, BatchServer, HdpOsr, HdpOsrConfig, OsrError, RingSink, ServingMode,
    SnapshotStore,
};
use hdp_osr::core::snapshot::{decode_model, encode_model};
use hdp_osr::dataset::protocol::TrainSet;
use hdp_osr::stats::sampling;
use hdp_osr::stats::snapshot::{SnapshotError, SnapshotWriter, SNAPSHOT_FORMAT_VERSION};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 20_26;

fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            vec![
                cx + 0.5 * sampling::standard_normal(rng),
                cy + 0.5 * sampling::standard_normal(rng),
            ]
        })
        .collect()
}

/// The suite's fixed scene — deliberately identical to the golden-trace
/// suite's: two separated known classes, four batches (known / known /
/// unknown / mixed). Everything derives from literal seeds.
fn model_and_batches() -> (HdpOsr, Vec<Vec<Vec<f64>>>) {
    let mut rng = StdRng::seed_from_u64(314);
    let train = TrainSet {
        class_ids: vec![1, 2],
        classes: vec![blob(&mut rng, -6.0, 0.0, 40), blob(&mut rng, 6.0, 0.0, 40)],
    };
    let config = HdpOsrConfig {
        iterations: 12,
        decision_sweeps: 3,
        serving: ServingMode::WarmStart,
        ..Default::default()
    };
    let model = HdpOsr::fit(&config, &train).expect("clean fit");
    let batches = vec![
        blob(&mut rng, -6.0, 0.0, 12),
        blob(&mut rng, 6.0, 0.0, 12),
        blob(&mut rng, 0.0, 9.0, 12),
        {
            let mut mixed = blob(&mut rng, -6.0, 0.0, 6);
            mixed.extend(blob(&mut rng, 0.0, 9.0, 6));
            mixed
        },
    ];
    (model, batches)
}

fn temp_store(name: &str) -> SnapshotStore {
    let dir = std::env::temp_dir().join(format!("osr_snap_persist_{}", std::process::id()));
    SnapshotStore::new(dir.join(format!("{name}.bin")))
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name)
}

/// Compare `actual` against the committed golden, or rewrite the golden
/// when `UPDATE_GOLDENS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::create_dir_all(path.parent().expect("goldens dir has a parent")).expect("mkdir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden `{name}` ({e}); regenerate with UPDATE_GOLDENS=1")
    });
    assert_eq!(actual, expected, "golden `{name}` drifted; see tests/goldens/");
}

/// Serve the batches on `model` and return the JSONL trace stream.
fn trace_stream(model: &HdpOsr, batches: &[Vec<Vec<f64>>], workers: usize) -> String {
    let sink = Arc::new(RingSink::new(64));
    let results = BatchServer::with_workers(model, workers)
        .with_trace_sink(sink.clone())
        .classify_batches(batches, SEED);
    for result in &results {
        result.as_ref().expect("healthy batch");
    }
    let mut out = String::new();
    for record in sink.records() {
        out.push_str(&record.to_jsonl());
        out.push('\n');
    }
    out
}

#[test]
fn save_load_resave_round_trip_is_byte_identical() {
    let (model, _) = model_and_batches();
    let store = temp_store("round_trip");
    let info = store.save(&model).expect("healthy save");
    assert_eq!(info.format_version, SNAPSHOT_FORMAT_VERSION);
    assert_eq!(info.method, "cdosr");

    let first = store.load_bytes().expect("saved bytes");
    assert_eq!(first.len(), info.bytes);
    let reloaded = store.load().expect("clean load");

    // Re-save through the store (not just re-encode): the full
    // save → load → re-save cycle must reproduce the file byte-for-byte.
    let store2 = temp_store("round_trip_resaved");
    store2.save(&reloaded).expect("re-save");
    assert_eq!(store2.load_bytes().unwrap(), first, "re-saved container drifted");

    // And a third generation stays fixed (the cycle is idempotent, not
    // merely 2-periodic).
    let reloaded2 = store2.load().expect("clean second load");
    assert_eq!(encode_model(&reloaded2).unwrap(), first);
    let _ = fs::remove_file(store.path());
    let _ = fs::remove_file(store2.path());
}

#[test]
fn every_corruption_mode_is_a_typed_error_never_a_panic() {
    let (model, _) = model_and_batches();
    let good = encode_model(&model).expect("encode");

    // Truncation at every prefix length: always a typed error.
    for len in 0..good.len().min(200) {
        assert!(decode_model(&good[..len]).is_err(), "prefix {len} decoded");
    }
    for len in (200..good.len()).step_by(97) {
        assert!(decode_model(&good[..len]).is_err(), "prefix {len} decoded");
    }

    // A single flipped bit anywhere in the container is detected. Every
    // byte position is cheap enough to sweep exhaustively here because the
    // scene is small.
    for pos in 0..good.len() {
        let mut bad = good.clone();
        bad[pos] ^= 0x40;
        assert!(decode_model(&bad).is_err(), "flip at byte {pos} decoded");
    }

    // Trailing garbage after a valid container.
    let mut padded = good.clone();
    padded.extend_from_slice(&[0u8; 7]);
    assert!(decode_model(&padded).is_err(), "trailing garbage decoded");

    // A future format version (with a consistent header) is version skew.
    let future = SnapshotWriter::with_version(SNAPSHOT_FORMAT_VERSION + 1, "cdosr", 2).finish();
    assert!(matches!(
        decode_model(&future),
        Err(SnapshotError::VersionSkew { found, supported })
            if found == SNAPSHOT_FORMAT_VERSION + 1 && supported == SNAPSHOT_FORMAT_VERSION
    ));

    // A container written by a different method is rejected by tag, not by
    // section shape.
    let foreign = SnapshotWriter::new("wsvm", 2).finish();
    assert!(matches!(
        decode_model(&foreign),
        Err(SnapshotError::MethodMismatch { expected, got })
            if expected == "cdosr" && got == "wsvm"
    ));

    // A well-formed container with no sections is a typed missing-section
    // error.
    let empty = SnapshotWriter::new("cdosr", 2).finish();
    assert!(matches!(decode_model(&empty), Err(SnapshotError::MissingSection { .. })));
}

#[test]
fn save_is_atomic_and_leaves_no_temp_residue() {
    let (model, _) = model_and_batches();
    let store = temp_store("atomic");
    store.save(&model).expect("first save");
    store.save(&model).expect("second save over the first");

    let dir = store.path().parent().expect("store has a parent dir");
    let residue: Vec<_> = fs::read_dir(dir)
        .expect("readable store dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(residue.is_empty(), "temp files left behind: {residue:?}");

    // A failed save (cold model has nothing to persist) must not clobber
    // the last-good file.
    let before = store.load_bytes().unwrap();
    let mut rng = StdRng::seed_from_u64(314);
    let train = TrainSet {
        class_ids: vec![1, 2],
        classes: vec![blob(&mut rng, -6.0, 0.0, 40), blob(&mut rng, 6.0, 0.0, 40)],
    };
    let cold = HdpOsr::fit(
        &HdpOsrConfig {
            iterations: 12,
            serving: ServingMode::ColdStart,
            ..Default::default()
        },
        &train,
    )
    .expect("cold fit");
    assert!(matches!(store.save(&cold), Err(OsrError::Snapshot(_))));
    assert_eq!(store.load_bytes().unwrap(), before, "failed save touched last-good");
    let _ = fs::remove_file(store.path());
}

#[test]
fn replica_fleet_loading_one_snapshot_serves_byte_identical_streams() {
    let (model, batches) = model_and_batches();
    let store = temp_store("fleet");
    store.save(&model).expect("healthy save");

    // Three replicas, each a fresh process-like load of the same file,
    // serving the same traffic under different worker counts: the streams
    // must be byte-identical to each other and to the committed golden.
    let replicas: Vec<HdpOsr> =
        (0..3).map(|_| store.load().expect("replica load")).collect();
    let streams: Vec<String> = replicas
        .iter()
        .zip([1usize, 2, 8])
        .map(|(replica, workers)| trace_stream(replica, &batches, workers))
        .collect();
    assert_eq!(streams[0], streams[1], "replica 1 diverged from replica 0");
    assert_eq!(streams[0], streams[2], "replica 2 diverged from replica 0");

    // The fleet must also match the *writer* serving the same traffic: a
    // reloaded replica is indistinguishable from the original model.
    let writer_stream = trace_stream(&model, &batches, 2);
    assert_eq!(streams[0], writer_stream, "replica diverged from the writer model");

    check_golden("replica_stream.jsonl", &streams[0]);
    let _ = fs::remove_file(store.path());
}

#[test]
fn partitioned_traffic_across_replicas_matches_one_replica_serving_all() {
    let (model, batches) = model_and_batches();
    let store = temp_store("partition");
    store.save(&model).expect("healthy save");

    let full_server_model = store.load().expect("load");
    let full = BatchServer::with_workers(&full_server_model, 2).classify_batches(&batches, SEED);

    // Partition the traffic: replica r serves batch j alone, seeding its
    // singleton run with `derive_batch_seed(SEED, j)`. Because
    // `derive_batch_seed(x, 0) == x`, the singleton's batch 0 replays the
    // fleet seed schedule exactly — per-batch outcomes are a pure function
    // of (snapshot bytes, batch, derived seed), not of which replica or
    // slot served them.
    for (j, batch) in batches.iter().enumerate() {
        let replica = store.load().expect("replica load");
        let solo = BatchServer::with_workers(&replica, 1)
            .classify_batches(std::slice::from_ref(batch), derive_batch_seed(SEED, j));
        let solo_outcome = solo[0].as_ref().expect("healthy singleton");
        let full_outcome = full[j].as_ref().expect("healthy fleet batch");
        assert_eq!(solo_outcome.predictions, full_outcome.predictions, "batch {j}");
        assert_eq!(solo_outcome.test_dishes, full_outcome.test_dishes, "batch {j}");
        assert_eq!(
            solo_outcome.log_likelihood.to_bits(),
            full_outcome.log_likelihood.to_bits(),
            "batch {j}"
        );
        assert_eq!(solo_outcome.gamma.to_bits(), full_outcome.gamma.to_bits(), "batch {j}");
        assert_eq!(solo_outcome.alpha.to_bits(), full_outcome.alpha.to_bits(), "batch {j}");
    }
    let _ = fs::remove_file(store.path());
}

#[test]
fn snapshot_info_inspection_is_cheap_and_accurate() {
    let (model, _) = model_and_batches();
    let store = temp_store("inspect");
    let saved = store.save(&model).expect("save");
    let inspected = store.inspect().expect("inspect");
    assert_eq!(saved, inspected);
    assert_eq!(inspected.dim, 2);
    assert!(inspected.n_sections >= 6, "config + five posterior sections");
    assert_eq!(inspected.bytes, store.load_bytes().unwrap().len());
    let _ = fs::remove_file(store.path());
}
