//! End-to-end integration: the full pipeline (synthetic dataset → protocol
//! split → train every method → predict → score) across crates, exactly as
//! the reproduction binaries drive it, on a small scale so it runs in debug.

use hdp_osr::dataset::protocol::{OpenSetSplit, SplitConfig};
use hdp_osr::dataset::synthetic::pendigits_config;
use hdp_osr::eval::methods::MethodSpec;
use hdp_osr::eval::metrics::OpenSetConfusion;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_problem(seed: u64, n_unknown: usize) -> (OpenSetSplit, osr_dataset::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = pendigits_config().scaled(0.06).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(4, n_unknown), &mut rng).unwrap();
    (split, data)
}

fn fast_lineup() -> Vec<MethodSpec> {
    MethodSpec::paper_lineup()
        .into_iter()
        .map(|spec| match spec {
            MethodSpec::HdpOsr(mut cfg) => {
                cfg.iterations = 8;
                MethodSpec::HdpOsr(cfg)
            }
            other => other,
        })
        .collect()
}

#[test]
fn every_method_beats_chance_on_a_closed_problem() {
    let (split, _) = small_problem(1, 0);
    for spec in fast_lineup() {
        let preds = spec.run_trial(&split.train, &split.test.points, 7, 0).unwrap();
        let c = OpenSetConfusion::from_slices(&preds, &split.test.truth);
        // 4 balanced known classes ⇒ chance accuracy is 0.25.
        assert!(
            c.accuracy() > 0.5,
            "{} scored accuracy {:.3} on a closed problem",
            spec.name(),
            c.accuracy()
        );
    }
}

#[test]
fn every_method_produces_one_prediction_per_test_point() {
    let (split, _) = small_problem(2, 3);
    for spec in fast_lineup() {
        let preds = spec.run_trial(&split.train, &split.test.points, 3, 1).unwrap();
        assert_eq!(preds.len(), split.test.len(), "{} count mismatch", spec.name());
    }
}

#[test]
fn hdp_osr_rejects_more_unknowns_than_a_closed_set_classifier() {
    let (split, _) = small_problem(3, 4);
    let lineup = fast_lineup();
    let hdp = lineup.iter().find(|s| s.name() == "HDP-OSR").unwrap();
    let preds = hdp.run_trial(&split.train, &split.test.points, 11, 0).unwrap();
    let c = OpenSetConfusion::from_slices(&preds, &split.test.truth);
    let n_unknown = split.test.n_unknown();
    assert!(n_unknown > 0);
    // HDP-OSR should reject a clear majority of unknown-class samples.
    assert!(
        c.tn_rejected * 2 > n_unknown,
        "only {} of {} unknowns rejected",
        c.tn_rejected,
        n_unknown
    );
}

#[test]
fn open_problem_is_harder_than_closed_for_every_threshold_baseline() {
    // Openness must not help: F at openness 0 ≥ F at high openness − slack.
    let (closed, _) = small_problem(4, 0);
    let (open, _) = small_problem(4, 5);
    for spec in fast_lineup() {
        let f = |split: &OpenSetSplit| {
            let preds = spec.run_trial(&split.train, &split.test.points, 5, 0).unwrap();
            OpenSetConfusion::from_slices(&preds, &split.test.truth).f_measure()
        };
        let f_closed = f(&closed);
        let f_open = f(&open);
        assert!(
            f_closed >= f_open - 0.12,
            "{}: closed {f_closed:.3} vs open {f_open:.3}",
            spec.name()
        );
    }
}

#[test]
fn whole_pipeline_is_deterministic_per_seed() {
    let (split, _) = small_problem(5, 2);
    for spec in fast_lineup() {
        let a = spec.run_trial(&split.train, &split.test.points, 99, 4).unwrap();
        let b = spec.run_trial(&split.train, &split.test.points, 99, 4).unwrap();
        assert_eq!(a, b, "{} is not deterministic", spec.name());
    }
}
