//! Golden-trace lock-in for the coalescing front-end: a fixed arrival
//! script, coalesced into micro-batches and dispatched at 1, 2, and 8
//! workers, must yield a byte-identical flush-trace stream — and that
//! stream is pinned against a committed golden.
//!
//! The script is entirely literal (no wall clock, no RNG for arrivals), so
//! the stream is a pure function of `(script, config, model seeds)`.
//! Regenerate deliberately with `UPDATE_GOLDENS=1`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use hdp_osr::core::{
    flush_trace_id, FlushTrigger, Frontend, FrontendConfig, HdpOsr, HdpOsrConfig, ModelRegistry,
    RingSink, ServePolicy, ServingMode, TraceRecord, TraceSink,
};
use hdp_osr::dataset::protocol::TrainSet;
use hdp_osr::stats::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BASE_SEED: u64 = 7_001;
const MAX_BATCH: usize = 4;
const MAX_DELAY_NS: u64 = 1_000;

fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            vec![
                cx + 0.5 * sampling::standard_normal(rng),
                cy + 0.5 * sampling::standard_normal(rng),
            ]
        })
        .collect()
}

/// A small warm CD-OSR model per tenant, from a literal seed, so every
/// micro-batch exercises the real collective-decision ladder.
fn tenant_model(seed: u64) -> HdpOsr {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = TrainSet {
        class_ids: vec![1, 2],
        classes: vec![blob(&mut rng, -6.0, 0.0, 30), blob(&mut rng, 6.0, 0.0, 30)],
    };
    let config = HdpOsrConfig {
        iterations: 10,
        decision_sweeps: 2,
        serving: ServingMode::WarmStart,
        ..Default::default()
    };
    HdpOsr::fit(&config, &train).expect("clean fit")
}

fn registry() -> ModelRegistry {
    let registry = ModelRegistry::new(2);
    registry.insert("acme", Arc::new(tenant_model(11)));
    registry.insert("beta", Arc::new(tenant_model(23)));
    registry
}

/// The fixed arrival script: (tenant, point, arrival time in virtual ns).
/// `acme` fills a size flush at t=40; `beta`'s undersized pair and `acme`'s
/// straggler ride until their SLO deadlines (t=1100 / t=1150).
const SCRIPT: [(&str, [f64; 2], u64); 7] = [
    ("acme", [-6.2, 0.1], 0),
    ("acme", [-5.8, -0.2], 10),
    ("acme", [6.1, 0.3], 20),
    ("acme", [5.9, -0.1], 40),
    ("beta", [-6.0, 0.2], 100),
    ("beta", [0.1, 9.0], 140),
    ("acme", [6.3, 0.0], 150),
];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::create_dir_all(path.parent().expect("goldens dir has a parent")).expect("mkdir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden `{name}` ({e}); regenerate with UPDATE_GOLDENS=1")
    });
    assert_eq!(actual, expected, "golden `{name}` drifted; see tests/goldens/");
}

/// Coalesce and dispatch the script at `workers`, returning the sink's
/// JSONL lines in flush-sequence order plus the flush summaries.
fn run_script(workers: usize) -> (Vec<String>, Vec<(String, FlushTrigger, usize)>) {
    let registry = registry();
    let mut frontend = Frontend::new(FrontendConfig {
        dim: 2,
        max_batch: MAX_BATCH,
        max_delay_ns: MAX_DELAY_NS,
        max_queue_depth: 64,
        base_seed: BASE_SEED,
    })
    .expect("valid config");

    for (tenant, point, at_ns) in SCRIPT {
        frontend.poll(at_ns);
        frontend.enqueue(tenant, point.to_vec(), at_ns).expect("admitted");
    }
    // Ride the stragglers out to their deadlines, one poll per SLO edge.
    assert_eq!(frontend.poll(1_100), 1, "beta's pair hits the SLO at t=1100");
    assert_eq!(frontend.poll(1_150), 1, "acme's straggler hits the SLO at t=1150");
    assert_eq!(frontend.pending_requests(), 0, "the script leaves nothing queued");

    let ring = Arc::new(RingSink::new(16));
    let sink: Arc<dyn TraceSink> = ring.clone();
    let outcomes = frontend.dispatch(&registry, workers, &ServePolicy::default(), Some(&sink));

    let lines: Vec<String> = ring.records().iter().map(TraceRecord::to_jsonl).collect();
    let summary = outcomes
        .iter()
        .map(|f| (f.trace_id.clone(), f.trigger, f.responses.len()))
        .collect();
    (lines, summary)
}

#[test]
fn coalesced_stream_matches_committed_golden() {
    let (lines, summary) = run_script(2);
    // Shape first: one size flush (acme ×4), two deadline flushes.
    let shape: Vec<(FlushTrigger, usize)> =
        summary.iter().map(|(_, t, n)| (*t, *n)).collect();
    assert_eq!(
        shape,
        vec![(FlushTrigger::Size, 4), (FlushTrigger::Deadline, 2), (FlushTrigger::Deadline, 1)]
    );
    check_golden("frontend_stream.jsonl", &lines.join("\n"));
}

#[test]
fn coalesced_stream_is_identical_at_1_2_and_8_workers() {
    let (one, summary_one) = run_script(1);
    let (two, summary_two) = run_script(2);
    let (eight, summary_eight) = run_script(8);
    assert_eq!(one.len(), 3, "one flush record per micro-batch");
    assert_eq!(one, two, "1 vs 2 workers");
    assert_eq!(one, eight, "1 vs 8 workers");
    assert_eq!(summary_one, summary_two);
    assert_eq!(summary_one, summary_eight);
}

#[test]
fn flush_records_parse_back_and_carry_their_identity() {
    let (lines, summary) = run_script(2);
    for (line, (trace_id, _, n_requests)) in lines.iter().zip(&summary) {
        let record = TraceRecord::from_jsonl(line).expect("stream lines parse back");
        let TraceRecord::Flush(flush) = record else {
            panic!("front-end dispatch emits Flush records only");
        };
        assert_eq!(&flush.batch.trace_id, trace_id);
        let seed = hdp_osr::core::flush_seed(BASE_SEED, &flush.tenant, flush.flush_epoch);
        assert_eq!(flush.batch.trace_id, flush_trace_id(&flush.tenant, flush.flush_epoch, seed));
        assert_eq!(flush.requests.len(), *n_requests);
        for sweep in &flush.batch.sweeps {
            assert_eq!(sweep.wall_ns, 0, "wall time never enters the stream");
        }
    }
}
