//! Trait-parity suite for method-agnostic serving.
//!
//! The [`CollectiveModel`] seam must be invisible for CD-OSR — serving
//! through `&dyn CollectiveModel` has to reproduce the direct
//! `HdpOsr::classify` path bit for bit, and the trace stream must stay
//! byte-compatible (no `method` key for CD-OSR records). The baselines must
//! ride the *same* production stack end to end: admission, trace emission,
//! method tagging, and outcome shape all through [`BatchServer`].

// Test code: the crate-level unwrap/expect ban targets serving paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::{Arc, OnceLock};

use hdp_osr::baselines::{BaselineSpec, ServedBaseline};
use hdp_osr::core::{
    batch_trace_id, derive_batch_seed, BatchServer, CollectiveModel, HdpOsr, HdpOsrConfig,
    RingSink, ServedVia, ServingMode, TraceRecord, CDOSR_METHOD,
};
use hdp_osr::dataset::protocol::TrainSet;
use hdp_osr::stats::sampling;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 777;

fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            vec![
                cx + 0.5 * sampling::standard_normal(rng),
                cy + 0.5 * sampling::standard_normal(rng),
            ]
        })
        .collect()
}

/// Two separated known classes plus three batches (known / unknown / mixed).
fn train_and_batches() -> (TrainSet, Vec<Vec<Vec<f64>>>) {
    let mut rng = StdRng::seed_from_u64(2023);
    let train = TrainSet {
        class_ids: vec![1, 2],
        classes: vec![blob(&mut rng, -6.0, 0.0, 40), blob(&mut rng, 6.0, 0.0, 40)],
    };
    let batches = vec![
        blob(&mut rng, -6.0, 0.0, 10),
        blob(&mut rng, 0.0, 9.0, 10),
        {
            let mut mixed = blob(&mut rng, 6.0, 0.0, 5);
            mixed.extend(blob(&mut rng, 0.0, 9.0, 5));
            mixed
        },
    ];
    (train, batches)
}

fn hdp_model(train: &TrainSet, serving: ServingMode) -> HdpOsr {
    let config =
        HdpOsrConfig { iterations: 8, decision_sweeps: 3, serving, ..Default::default() };
    HdpOsr::fit(&config, train).expect("clean fit")
}

/// Serve through the server (which only sees `&dyn CollectiveModel`) and
/// return outcomes plus the JSONL trace lines.
fn serve_dyn(
    model: &dyn CollectiveModel,
    batches: &[Vec<Vec<f64>>],
    workers: usize,
) -> (Vec<hdp_osr::core::ClassifyOutcome>, Vec<String>) {
    let sink = Arc::new(RingSink::new(32));
    let outcomes = BatchServer::with_workers(model, workers)
        .with_trace_sink(sink.clone())
        .classify_batches(batches, SEED)
        .into_iter()
        .map(|r| r.expect("healthy batch"))
        .collect();
    let lines = sink.records().iter().map(TraceRecord::to_jsonl).collect();
    (outcomes, lines)
}

#[test]
fn hdp_through_the_trait_is_bit_identical_to_the_direct_path() {
    let (train, batches) = train_and_batches();
    for serving in [ServingMode::WarmStart, ServingMode::ColdStart] {
        let model = hdp_model(&train, serving);
        let (outcomes, _) = serve_dyn(&model, &batches, 2);
        for (idx, outcome) in outcomes.iter().enumerate() {
            // The direct path under the server's derived per-batch seed must
            // agree to the bit: same predictions, same dish seating, same
            // joint likelihood.
            let mut rng = StdRng::seed_from_u64(derive_batch_seed(SEED, idx));
            let direct = model.classify_detailed(&batches[idx], &mut rng).unwrap();
            assert_eq!(outcome.predictions, direct.predictions, "batch {idx}");
            assert_eq!(outcome.test_dishes, direct.test_dishes, "batch {idx}");
            assert_eq!(
                outcome.log_likelihood.to_bits(),
                direct.log_likelihood.to_bits(),
                "batch {idx}"
            );
            assert_eq!(outcome.method, CDOSR_METHOD, "batch {idx}");
            assert_eq!(outcome.trace_id, batch_trace_id(SEED, idx), "batch {idx}");
        }
    }
}

#[test]
fn cdosr_trace_lines_omit_the_method_key() {
    let (train, batches) = train_and_batches();
    let model = hdp_model(&train, ServingMode::WarmStart);
    let (_, lines) = serve_dyn(&model, &batches, 1);
    assert_eq!(lines.len(), batches.len());
    for line in &lines {
        // Byte-compatibility with pre-trait streams: no `method` key at all.
        assert!(!line.contains("\"method\""), "CD-OSR line grew a method key: {line}");
        let TraceRecord::Batch(trace) = TraceRecord::from_jsonl(line).unwrap() else {
            panic!("batch serving emits Batch records only");
        };
        assert_eq!(trace.method, CDOSR_METHOD, "absent key must decode to cdosr");
    }
}

#[test]
fn every_baseline_serves_end_to_end_through_the_batch_server() {
    let (train, batches) = train_and_batches();
    for spec in BaselineSpec::default_lineup() {
        let served = ServedBaseline::train(spec, &train).unwrap();
        let (outcomes, lines) = serve_dyn(&served, &batches, 2);
        assert_eq!(outcomes.len(), batches.len(), "{}", spec.method());
        for (idx, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.predictions.len(), batches[idx].len());
            assert_eq!(outcome.method, spec.method());
            assert_eq!(outcome.served_via, ServedVia::Warm);
            assert_eq!(outcome.attempts, 1);
            assert_eq!(outcome.trace_id, batch_trace_id(SEED, idx));
        }
        for line in &lines {
            let tag = format!("\"method\":\"{}\"", spec.method());
            assert!(line.contains(&tag), "{} line missing its tag: {line}", spec.method());
            let TraceRecord::Batch(trace) = TraceRecord::from_jsonl(line).unwrap() else {
                panic!("batch serving emits Batch records only");
            };
            assert_eq!(trace.method, spec.method());
            assert!(trace.sweeps.is_empty(), "baselines are sweep-free");
        }
    }
}

#[test]
fn baseline_service_is_deterministic_across_worker_counts_and_seeds() {
    let (train, batches) = train_and_batches();
    let served =
        ServedBaseline::train(BaselineSpec::default_lineup()[4], &train).unwrap(); // OSNN
    let (one, _) = serve_dyn(&served, &batches, 1);
    let (eight, _) = serve_dyn(&served, &batches, 8);
    for (a, b) in one.iter().zip(&eight) {
        assert_eq!(a.predictions, b.predictions, "worker count leaked into a baseline");
    }
    // Baselines consume no randomness: a different seed changes trace ids
    // only, never predictions.
    let other_seed = BatchServer::with_workers(&served as &dyn CollectiveModel, 1)
        .classify_batches(&batches, SEED ^ 0xDEAD)
        .into_iter()
        .map(|r| r.unwrap())
        .collect::<Vec<_>>();
    for (a, b) in one.iter().zip(&other_seed) {
        assert_eq!(a.predictions, b.predictions, "seed leaked into a baseline");
    }
}

/// All six methods behind one trait object list, trained once.
fn all_models(train: &TrainSet) -> &'static Vec<Box<dyn CollectiveModel>> {
    static MODELS: OnceLock<Vec<Box<dyn CollectiveModel>>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let mut models: Vec<Box<dyn CollectiveModel>> =
            vec![Box::new(hdp_model(train, ServingMode::WarmStart))];
        for spec in BaselineSpec::default_lineup() {
            models.push(Box::new(ServedBaseline::train(spec, train).unwrap()));
        }
        models
    })
}

/// A coordinate drawn from the hostile spectrum: ordinary, non-finite, and
/// extreme-magnitude values.
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        -8.0f64..8.0,
        Just(0.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(1e300),
        Just(-1e300),
    ]
}

prop_compose! {
    /// Batches of 0–5 points with independently drawn dimensions (0–4), so
    /// empty batches, empty points, and ragged dimension mixes all occur.
    fn hostile_batch()(
        points in prop::collection::vec(prop::collection::vec(coord(), 0..5), 0..6),
    ) -> Vec<Vec<f64>> {
        points
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The server must answer every method with an outcome sized to the
    /// batch or a typed error — reaching the end of the closure at all
    /// proves no method panics on hostile input.
    #[test]
    fn hostile_batches_never_panic_any_served_method(
        batch in hostile_batch(),
        seed in 0u64..1_000_000,
    ) {
        let (train, _) = train_and_batches();
        for model in all_models(&train) {
            let results = BatchServer::with_workers(model.as_ref(), 1)
                .classify_batches(std::slice::from_ref(&batch), seed);
            prop_assert_eq!(results.len(), 1);
            // A typed rejection is the other legal answer.
            if let Ok(outcome) = &results[0] {
                prop_assert_eq!(outcome.predictions.len(), batch.len());
                prop_assert_eq!(outcome.method.as_str(), model.method());
            }
        }
    }
}
