//! The Fig. 1 story, runnable: why bounding decision regions with thresholds
//! still leaves open-space risk, and why the collective decision does not.
//!
//! A 2-d scene with four known classes is attacked by unknown clusters
//! placed at increasingly awkward positions:
//!   * far away from everything (easy),
//!   * beyond a class along its decision direction (the 1-vs-Set slab's
//!     blind spot is bounded here, so it survives),
//!   * laterally displaced so it projects *into* a slab (Fig. 1's ?2/?3 —
//!     the 1-vs-Set machine misclassifies),
//!   * between two classes (Fig. 1's ?4 — OSNN's ratio test misfires).
//!
//! ```text
//! cargo run --release --example open_space_risk
//! ```

use hdp_osr::baselines::{OneVsSet, OneVsSetParams, OpenSetClassifier, Osnn, OsnnParams};
use hdp_osr::core::{HdpOsr, HdpOsrConfig, Prediction};
use hdp_osr::dataset::protocol::TrainSet;
use hdp_osr::stats::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize, std: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            vec![cx + std * sampling::standard_normal(rng), cy + std * sampling::standard_normal(rng)]
        })
        .collect()
}

fn describe(p: &Prediction) -> String {
    match p {
        Prediction::Known(c) => format!("claimed as class {c}"),
        Prediction::Unknown => "rejected (unknown)".to_string(),
    }
}

fn majority<C: Fn(&[f64]) -> Prediction>(points: &[Vec<f64>], classify: C) -> Prediction {
    let mut counts = std::collections::BTreeMap::new();
    for p in points {
        *counts.entry(classify(p)).or_insert(0usize) += 1;
    }
    counts.into_iter().max_by_key(|&(_, c)| c).expect("non-empty cluster").0
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    // Four known classes arranged like Fig. 1.
    let train = TrainSet {
        class_ids: vec![1, 2, 3, 4],
        classes: vec![
            blob(&mut rng, -6.0, 6.0, 60, 0.7),
            blob(&mut rng, 6.0, 6.0, 60, 0.7),
            blob(&mut rng, -6.0, -6.0, 60, 0.7),
            blob(&mut rng, 6.0, -6.0, 60, 0.7),
        ],
    };

    let one_vs_set = OneVsSet::train(&train, &OneVsSetParams::default()).expect("train 1-vs-Set");
    let (pts, labels) = train.flattened();
    let osnn = Osnn::train(&pts, &labels, 4, &OsnnParams { sigma: 0.7 }).expect("train OSNN");
    let hdp = HdpOsr::fit(&HdpOsrConfig { iterations: 15, ..Default::default() }, &train)
        .expect("fit HDP-OSR");

    // ?3 is constructed exactly: displace class 0's center along its own
    // hyperplane direction (perpendicular to the SVM weight vector), so the
    // decision value — and hence slab membership — is unchanged however far
    // we go. This is the paper's Fig. 1 ?2/?3 failure made precise.
    let w = one_vs_set.linear_weights(0);
    let norm = (w[0] * w[0] + w[1] * w[1]).sqrt();
    let lateral = [-w[1] / norm, w[0] / norm];
    let t = 18.0;
    let q3 = (-6.0 + t * lateral[0], 6.0 + t * lateral[1]);

    let scenarios: [(&str, f64, f64); 4] = [
        ("?1 far from all classes", 25.0, 0.0),
        ("?2 beyond class 1 along its decision direction", -14.0, 14.0),
        ("?3 lateral shift inside class 1's slab (Fig. 1 ?2/?3)", q3.0, q3.1),
        ("?4 between class 3 and class 4 (OSNN's blind spot)", 0.0, -6.0),
    ];

    println!("{:<55} {:>22} {:>22} {:>22}", "unknown cluster", "1-vs-Set", "OSNN", "HDP-OSR");
    for (name, cx, cy) in scenarios {
        let cluster = blob(&mut rng, cx, cy, 30, 0.5);
        let ovs = majority(&cluster, |p| one_vs_set.predict(p));
        let osn = majority(&cluster, |p| osnn.predict(p));
        // HDP-OSR decides collectively over the whole batch.
        let mut local_rng = StdRng::seed_from_u64(9);
        let preds = hdp.classify(&cluster, &mut local_rng).expect("classify cluster");
        let mut counts = std::collections::BTreeMap::new();
        for p in &preds {
            *counts.entry(*p).or_insert(0usize) += 1;
        }
        let hdp_maj = counts.into_iter().max_by_key(|&(_, c)| c).expect("non-empty").0;
        println!(
            "{:<55} {:>22} {:>22} {:>22}",
            name,
            describe(&ovs),
            describe(&osn),
            describe(&hdp_maj)
        );
    }
    println!();
    println!("The threshold methods each have a geometric blind spot (the slab is");
    println!("unbounded parallel to its hyperplanes; the distance-ratio test accepts");
    println!("anything much closer to one class than to the others). The collective");
    println!("decision models the unknown cluster as its own new subclass instead.");
}
