//! All six methods on one open-set problem, with the full §4.1.1 protocol:
//! a validation split tunes each method's thresholds (step 7), then every
//! tuned method faces the same randomized evaluation splits (step 8).
//!
//! ```text
//! cargo run --release --example baseline_shootout
//! ```

use hdp_osr::dataset::protocol::{OpenSetSplit, SplitConfig, ValidationSplit};
use hdp_osr::dataset::synthetic::pendigits_config;
use hdp_osr::eval::experiment::{run_trials, ExperimentConfig};
use hdp_osr::eval::tuning::{tune_method, Grids};
use osr_stats::descriptive::MeanStd;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 42;
    let mut rng = StdRng::seed_from_u64(seed);
    let data = pendigits_config().scaled(0.15).generate(&mut rng);
    let split_cfg = SplitConfig::new(5, 3); // openness ≈ 12.3 %

    // Step 7: carve a validation split out of one training set and let each
    // method pick its own thresholds on it.
    let first_split = OpenSetSplit::sample(&data, &split_cfg, &mut rng).expect("sample split");
    let validation = ValidationSplit::sample(&first_split.train, &mut rng).expect("validation");

    println!(
        "tuning on {} fitting points / {} closed-sim / {} open-sim points\n",
        validation.fitting.total_points(),
        validation.closed.len(),
        validation.open.len()
    );
    println!(
        "{:<10} {:>10} {:>10} | {:>18} {:>18}",
        "method", "F(closed)", "F(open)", "F-measure (eval)", "accuracy (eval)"
    );

    let eval_cfg = ExperimentConfig { split: split_cfg, trials: 5, seed, tune: false, parallel: true };
    for family in Grids::coarse().candidates {
        let tuned = match tune_method(&family, &validation, seed) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: tuning failed: {e}", family[0].name());
                continue;
            }
        };
        // Step 8: evaluate the tuned spec on fresh randomized splits.
        let scores = run_trials(&data, &eval_cfg, &tuned.spec).expect("evaluation trials");
        let f = MeanStd::from_values(&scores.f_measures);
        let a = MeanStd::from_values(&scores.accuracies);
        println!(
            "{:<10} {:>10.4} {:>10.4} | {:>18} {:>18}",
            tuned.spec.name(),
            tuned.f_closed,
            tuned.f_open,
            format!("{f}"),
            format!("{a}")
        );
    }
}
