//! Streaming test batches — the paper's §5 future-work direction, runnable.
//!
//! HDP-OSR is transductive: the sampler co-clusters training data with the
//! test batch, so "other new testing sets … lead to repeated training". This
//! example shows the two amortized alternatives the workspace ships, from
//! most to least faithful to the paper's collective decision:
//!
//! 1. **Warm-start serving** (the default `ServingMode::WarmStart`): `fit`
//!    runs the training burn-in once and checkpoints the converged
//!    posterior; every batch is answered from a private clone in
//!    `decision_sweeps` short sweeps that reseat *only* the batch. Each
//!    batch still takes the full collective decision — its points can join
//!    training subclasses or nucleate brand-new dishes — and `BatchServer`
//!    fans independent batches out over worker threads deterministically.
//! 2. **Frozen inference** (`hdp_osr::core::inductive`): labels points one
//!    at a time against a frozen posterior in O(K·d²) per point — fastest,
//!    but gives up the batch-level collective effect entirely.
//!
//! A cold run of chunk 1 is timed alongside for contrast.
//!
//! ```text
//! cargo run --release --example streaming_batches
//! ```

use hdp_osr::core::{
    BatchServer, FrozenModel, HdpOsr, HdpOsrConfig, JsonlSink, ServingMode, SnapshotStore,
    TraceRecord, TraceSink,
};
use hdp_osr::dataset::protocol::{GroundTruth, OpenSetSplit, SplitConfig, TestSet};
use hdp_osr::dataset::synthetic::pendigits_config;
use hdp_osr::eval::metrics::OpenSetConfusion;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let data = pendigits_config().scaled(0.3).generate(&mut rng);

    // One open-set problem; its test stream arrives in four chunks with the
    // same known/unknown class structure (interleaved round-robin so every
    // chunk sees every population).
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 3), &mut rng)
        .expect("dataset supports a 5+3 split");
    let n_chunks = 4;
    let mut chunks: Vec<TestSet> =
        (0..n_chunks).map(|_| TestSet { points: Vec::new(), truth: Vec::new() }).collect();
    for (i, (p, t)) in split.test.points.iter().zip(&split.test.truth).enumerate() {
        chunks[i % n_chunks].points.push(p.clone());
        chunks[i % n_chunks].truth.push(*t);
    }

    // The cold baseline: the paper's schedule, full burn-in per batch.
    let cold_config =
        HdpOsrConfig { iterations: 20, serving: ServingMode::ColdStart, ..Default::default() };
    let cold_model = HdpOsr::fit(&cold_config, &split.train).expect("cold fit");
    let t0 = Instant::now();
    let cold = cold_model.classify_detailed(&chunks[0].points, &mut rng).expect("cold pass");
    let cold_time = t0.elapsed();
    let c = OpenSetConfusion::from_slices(&cold.predictions, &chunks[0].truth);
    println!(
        "chunk 1 (cold, per-batch burn-in): {:4} points in {:>9.2?}  F = {:.4}",
        chunks[0].points.len(),
        cold_time,
        c.f_measure()
    );

    // Warm-start: pay the burn-in once at fit time… A few extra decision
    // sweeps let each batch's seating mix before the majority vote; they
    // cost O(N_batch) each, not O(N_train + N_batch).
    let warm_config =
        HdpOsrConfig { iterations: 20, decision_sweeps: 5, ..Default::default() };
    let t0 = Instant::now();
    let model = HdpOsr::fit(&warm_config, &split.train).expect("warm fit");
    println!("warm fit (burn-in + checkpoint):   once, {:>9.2?}", t0.elapsed());

    // The fit kept its burn-in trace; the diagnostics say whether 20 sweeps
    // were enough (R̂ near 1, healthy ESS) and where the chain settled.
    let report = model.fit_report().expect("warm fits keep their report");
    println!(
        "fit diagnostics: split-R\u{302} = {:.3}, ESS = {:.1}/{}, suggested burn-in = {}",
        report.diagnostics.rhat,
        report.diagnostics.ess,
        report.diagnostics.n,
        report.diagnostics.burn_in
    );

    // …then serve every chunk concurrently from the checkpoint. Results are
    // a pure function of (model, batches, seed) — worker count irrelevant,
    // and so is the JSONL trace stream the attached sink writes.
    let metrics_before = hdp_osr::stats::metrics::global().snapshot();
    let _ = std::fs::create_dir_all("results");
    let sink: Arc<JsonlSink> = Arc::new(
        JsonlSink::create("results/trace_streaming.jsonl").expect("results/ is writable"),
    );
    sink.record(&TraceRecord::Fit(report.clone()));
    let server = BatchServer::new(&model).with_trace_sink(sink);
    let batches: Vec<Vec<Vec<f64>>> = chunks.iter().map(|c| c.points.clone()).collect();
    let t0 = Instant::now();
    let outcomes = server.classify_batches(&batches, 11);
    let warm_time = t0.elapsed();
    let per_batch = warm_time / n_chunks as u32;
    for (no, (chunk, outcome)) in chunks.iter().zip(&outcomes).enumerate() {
        let outcome = outcome.as_ref().expect("non-empty chunk");
        let c = OpenSetConfusion::from_slices(&outcome.predictions, &chunk.truth);
        let unknowns = chunk.truth.iter().filter(|t| **t == GroundTruth::Unknown).count();
        println!(
            "chunk {} (warm, collective):        {:4} points in {:>9.2?}  F = {:.4}  \
             ({} unknowns, {} new subclasses)",
            no + 1,
            chunk.points.len(),
            per_batch,
            c.f_measure(),
            unknowns,
            outcome.report.n_new_subclasses()
        );
    }
    println!(
        "warm serving: {n_chunks} chunks in {:>9.2?} on {} workers \
         ({:.1} batches/sec)",
        warm_time,
        server.workers(),
        n_chunks as f64 / warm_time.as_secs_f64().max(1e-9)
    );

    // What the metrics registry saw during the warm region: total sampler
    // work plus the fault-tolerance counters (all zero on a healthy run).
    let delta = hdp_osr::stats::metrics::global().snapshot().delta_since(&metrics_before);
    let sweep_times = delta.histogram(hdp_osr::hdp::SWEEP_TIME_METRIC);
    println!(
        "metrics: {} sweeps, {} seat-moves, {} predictive-logpdf calls, \
         {} retries, {} degraded; sweep time p50≈{:.0} µs p99≈{:.0} µs",
        delta.counter(hdp_osr::hdp::SWEEPS_METRIC),
        delta.counter(hdp_osr::hdp::SEAT_MOVES_METRIC),
        delta.counter(hdp_osr::stats::counters::PREDICTIVE_LOGPDF_CALLS),
        delta.counter(hdp_osr::stats::counters::SERVE_RETRIES),
        delta.counter(hdp_osr::stats::counters::DEGRADED_BATCHES),
        sweep_times.quantile(0.5) as f64 / 1e3,
        sweep_times.quantile(0.99) as f64 / 1e3,
    );
    println!("trace stream: results/trace_streaming.jsonl (1 Fit + {n_chunks} Batch records)");

    // Durability: checkpoint the warm posterior to disk, "crash" (drop every
    // in-memory artifact of the fit), reload from the snapshot file alone,
    // and serve the same stream again. The recovered process never re-runs
    // the burn-in — and its trace stream is byte-identical to the pre-crash
    // one, which is the whole point of the canonical snapshot encoding.
    let store = SnapshotStore::new("results/streaming_snapshot.bin");
    let info = store.save(&model).expect("results/ is writable");
    println!(
        "snapshot: results/streaming_snapshot.bin ({} bytes, {} sections, format v{})",
        info.bytes, info.n_sections, info.format_version
    );
    let recovered_outcomes = {
        // Simulated crash: only `store`'s path survives into this scope.
        let t0 = Instant::now();
        let recovered = store.load().expect("snapshot loads after the crash");
        let reload_time = t0.elapsed();
        let sink: Arc<JsonlSink> = Arc::new(
            JsonlSink::create("results/trace_recovered.jsonl").expect("results/ is writable"),
        );
        let outcomes =
            BatchServer::new(&recovered).with_trace_sink(sink).classify_batches(&batches, 11);
        println!(
            "recovery: reload in {:>9.2?} (no burn-in), {n_chunks} chunks re-served warm",
            reload_time
        );
        outcomes
    };
    for (orig, rec) in outcomes.iter().zip(&recovered_outcomes) {
        let (orig, rec) = (orig.as_ref().expect("pre-crash"), rec.as_ref().expect("recovered"));
        assert_eq!(orig.predictions, rec.predictions, "recovered predictions drifted");
        assert_eq!(
            orig.log_likelihood.to_bits(),
            rec.log_likelihood.to_bits(),
            "recovered log-likelihood drifted"
        );
    }
    let pre_crash = std::fs::read_to_string("results/trace_streaming.jsonl").expect("pre-crash");
    let recovered = std::fs::read_to_string("results/trace_recovered.jsonl").expect("recovered");
    // The recovered stream has no Fit record (the sweep trace is
    // observability, not serving state, so it is deliberately not persisted)
    // — every Batch line must match byte for byte.
    let batch_lines: Vec<&str> =
        pre_crash.lines().filter(|l| l.starts_with("{\"Batch\"")).collect();
    assert_eq!(
        batch_lines,
        recovered.lines().collect::<Vec<_>>(),
        "recovered trace stream is not byte-identical to the pre-crash stream"
    );
    println!("recovered trace byte-matches the pre-crash stream (results/trace_recovered.jsonl)");

    // Fastest tier: freeze the posterior of one collective pass and label
    // later points inductively, without any sampling at all.
    let first_outcome = outcomes[0].as_ref().expect("chunk 1 outcome");
    let frozen =
        FrozenModel::freeze(&model, first_outcome, &chunks[0].points).expect("freeze");
    println!(
        "frozen model: {} subclasses, γ = {:.1}",
        frozen.n_subclasses(),
        first_outcome.gamma
    );
    for (no, chunk) in chunks.iter().enumerate().skip(1) {
        let t0 = Instant::now();
        let preds = frozen.predict_batch(&chunk.points);
        let frozen_time = t0.elapsed();
        let c = OpenSetConfusion::from_slices(&preds, &chunk.truth);
        println!(
            "chunk {} (frozen, inductive):       {:4} points in {:>9.2?}  F = {:.4}",
            no + 1,
            chunk.points.len(),
            frozen_time,
            c.f_measure()
        );
    }

    println!();
    println!("Warm serving keeps the collective decision — each batch can still nucleate");
    println!("new subclasses against the checkpointed posterior — while paying the");
    println!("training burn-in exactly once. The frozen pass is faster still but misses");
    println!("unknown categories that are only identifiable *as a batch*, which is why");
    println!("the paper calls overcoming transduction 'a promising research direction'.");
}
