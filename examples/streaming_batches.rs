//! Streaming test batches — the paper's §5 future-work direction, runnable.
//!
//! HDP-OSR is transductive: the sampler co-clusters training data with the
//! test batch, so "other new testing sets … lead to repeated training". This
//! example shows the amortized alternative shipped in
//! `hdp_osr::core::inductive`: run the expensive collective pass once on the
//! first batch, freeze the posterior, and label every subsequent batch in
//! O(K·d²) per point.
//!
//! ```text
//! cargo run --release --example streaming_batches
//! ```

use hdp_osr::core::{FrozenModel, HdpOsr, HdpOsrConfig};
use hdp_osr::dataset::protocol::{GroundTruth, OpenSetSplit, SplitConfig, TestSet};
use hdp_osr::dataset::synthetic::pendigits_config;
use hdp_osr::eval::metrics::OpenSetConfusion;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let data = pendigits_config().scaled(0.3).generate(&mut rng);

    // One open-set problem; its test stream arrives in four chunks with the
    // same known/unknown class structure (interleaved round-robin so every
    // chunk sees every population).
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 3), &mut rng)
        .expect("dataset supports a 5+3 split");
    let n_chunks = 4;
    let mut chunks: Vec<TestSet> =
        (0..n_chunks).map(|_| TestSet { points: Vec::new(), truth: Vec::new() }).collect();
    for (i, (p, t)) in split.test.points.iter().zip(&split.test.truth).enumerate() {
        chunks[i % n_chunks].points.push(p.clone());
        chunks[i % n_chunks].truth.push(*t);
    }

    let config = HdpOsrConfig { iterations: 20, ..Default::default() };
    let model = HdpOsr::fit(&config, &split.train).expect("fit");

    // First chunk: the full collective (transductive) pass.
    let first = &chunks[0];
    let t0 = Instant::now();
    let outcome = model.classify_detailed(&first.points, &mut rng).expect("collective pass");
    let collective_time = t0.elapsed();
    let c = OpenSetConfusion::from_slices(&outcome.predictions, &first.truth);
    println!(
        "chunk 1 (collective): {:4} points in {:>9.2?}  F = {:.4}",
        first.points.len(),
        collective_time,
        c.f_measure()
    );

    // Freeze the posterior once; later chunks are labeled amortized.
    let frozen = FrozenModel::freeze(&model, &outcome, &first.points).expect("freeze");
    println!("frozen model: {} subclasses, γ = {:.1}", frozen.n_subclasses(), outcome.gamma);

    for (no, chunk) in chunks.iter().enumerate().skip(1) {
        let t0 = Instant::now();
        let preds = frozen.predict_batch(&chunk.points);
        let amortized_time = t0.elapsed();
        let c = OpenSetConfusion::from_slices(&preds, &chunk.truth);
        let unknowns = chunk.truth.iter().filter(|t| **t == GroundTruth::Unknown).count();
        println!(
            "chunk {} (frozen):     {:4} points in {:>9.2?}  F = {:.4}  ({} unknowns)",
            no + 1,
            chunk.points.len(),
            amortized_time,
            c.f_measure(),
            unknowns
        );
    }
    println!();
    println!("The frozen pass is orders of magnitude faster per batch. The price is the");
    println!("collective effect: an unknown category that only becomes identifiable *as");
    println!("a batch* is missed until the next collective run folds it in — which is");
    println!("why the paper calls overcoming transduction 'a promising research direction'.");
}
