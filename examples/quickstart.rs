//! Quickstart: train HDP-OSR on a synthetic PENDIGITS split and classify a
//! test batch containing unknown classes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hdp_osr::core::{HdpOsr, HdpOsrConfig, Prediction};
use hdp_osr::dataset::protocol::{GroundTruth, OpenSetSplit, SplitConfig};
use hdp_osr::dataset::synthetic::pendigits_config;
use hdp_osr::eval::metrics::OpenSetConfusion;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A PENDIGITS-shaped dataset (10 classes, 16 features). The replica
    //    is scaled down so the example runs in seconds; drop `.scaled` for
    //    the full 10 992-sample version.
    let data = pendigits_config().scaled(0.2).generate(&mut rng);
    println!("dataset: {} ({} samples, {} classes, {} dims)", data.name, data.len(), data.n_classes, data.dim());

    // 2. An open-set problem: 5 known classes for training, 3 unknown
    //    classes mixed into the test set (openness ≈ 12 %).
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 3), &mut rng)
        .expect("dataset has enough classes");
    println!(
        "split: {} training points over {} known classes, {} test points ({} unknown), openness {:.1}%",
        split.train.total_points(),
        split.train.n_classes(),
        split.test.len(),
        split.test.n_unknown(),
        split.openness * 100.0
    );

    // 3. Fit the base measure and co-cluster the test batch with the known
    //    classes (the collective decision).
    let config = HdpOsrConfig::default(); // 30 Gibbs sweeps, paper settings
    let model = HdpOsr::fit(&config, &split.train).expect("well-formed training set");
    let predictions = model.classify(&split.test.points, &mut rng).expect("non-empty test batch");

    // 4. Score it.
    let confusion = OpenSetConfusion::from_slices(&predictions, &split.test.truth);
    println!(
        "micro-F-measure: {:.4}   open-set accuracy: {:.4}",
        confusion.f_measure(),
        confusion.accuracy()
    );

    // 5. Peek at a few decisions.
    for (i, (pred, truth)) in predictions.iter().zip(&split.test.truth).take(8).enumerate() {
        let truth_str = match truth {
            GroundTruth::Known(c) => format!("known class {c}"),
            GroundTruth::Unknown => "UNKNOWN class".to_string(),
        };
        let pred_str = match pred {
            Prediction::Known(c) => format!("class {c}"),
            Prediction::Unknown => "rejected as unknown".to_string(),
        };
        println!("  test[{i}]: truly {truth_str:>16} -> predicted {pred_str}");
    }
}
