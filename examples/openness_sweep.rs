//! Openness sweep: how each open-set method's F-measure behaves as more and
//! more unknown classes contaminate the test set — a miniature of the
//! paper's Figures 4–9 that runs in about a minute.
//!
//! ```text
//! cargo run --release --example openness_sweep
//! ```

use hdp_osr::core::HdpOsrConfig;
use hdp_osr::dataset::synthetic::pendigits_config;
use hdp_osr::eval::experiment::{openness_sweep, to_tsv};
use hdp_osr::eval::methods::MethodSpec;
use osr_baselines::{OsnnParams, PiSvmParams, WSvmParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let data = pendigits_config().scaled(0.15).generate(&mut rng);

    // One fixed specification per method (no tuning phase) keeps the sweep
    // fast; the reproduction binaries in `crates/bench` run the full
    // validation grid search instead.
    let families: Vec<Vec<MethodSpec>> = vec![
        vec![MethodSpec::WSvm(WSvmParams::default())],
        vec![MethodSpec::PiSvm(PiSvmParams::default())],
        vec![MethodSpec::Osnn(OsnnParams::default())],
        vec![MethodSpec::HdpOsr(HdpOsrConfig { iterations: 20, ..Default::default() })],
    ];

    // 5 known classes; 0 → 5 unknown classes sweeps openness 0 → 18.4 %.
    let rows = openness_sweep(&data, 5, &[0, 1, 3, 5], 3, 42, false, &families)
        .expect("sweep over a well-formed dataset");

    println!("{}", to_tsv(&rows));
    println!("Reading the table: every method starts near its closed-set F-measure at");
    println!("openness 0; threshold-based baselines bleed F-measure as unknown classes");
    println!("arrive, while HDP-OSR's generative co-clustering stays nearly flat —");
    println!("the central claim of the paper.");
}
