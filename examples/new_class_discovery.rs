//! New-class discovery (paper §4.3): HDP-OSR not only rejects unknowns, it
//! *discovers* them as fresh subclasses and estimates how many unknown
//! categories the test batch contains (Eq. 11).
//!
//! ```text
//! cargo run --release --example new_class_discovery
//! ```

use hdp_osr::core::{refine_unknown_classes, HdpOsr, HdpOsrConfig};
use hdp_osr::dataset::protocol::{GroundTruth, OpenSetSplit, SplitConfig};
use hdp_osr::dataset::synthetic::pendigits_config;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 5 known classes, and a test set carrying samples of 4 never-seen
    // classes. HDP-OSR must both serve the knowns and notice the strangers.
    let data = pendigits_config().scaled(0.25).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 4), &mut rng)
        .expect("dataset has enough classes");

    let config = HdpOsrConfig::default();
    let model = HdpOsr::fit(&config, &split.train).expect("well-formed training set");
    let outcome =
        model.classify_detailed(&split.test.points, &mut rng).expect("non-empty test batch");

    // The subclass report is the content of the paper's Tables 1–2: how many
    // subclasses each known class decomposed into, and how the test set
    // splits between known-associated and brand-new subclasses.
    println!("{}", outcome.report.to_table());

    println!(
        "true number of unknown classes: {}   estimated Δ: {}",
        split.unknown_class_ids.len(),
        outcome.report.delta_estimate
    );
    println!(
        "test mass on known subclasses: {:.1}%   on new subclasses: {:.1}%",
        outcome.report.test_known_proportion * 100.0,
        outcome.report.test_new_proportion * 100.0
    );
    println!(
        "sampler diagnostics: γ = {:.1}, α₀ = {:.2}, joint log-likelihood = {:.1}",
        outcome.gamma, outcome.alpha, outcome.log_likelihood
    );

    // §4.3's closing suggestion, implemented: use Δ as the K-means prior to
    // aggregate the discovered subclasses into actual unknown categories.
    let refined = refine_unknown_classes(&outcome, &split.test.points, &mut rng);
    println!("\nK-means refinement with k = Δ = {}:", outcome.report.delta_estimate);
    for (i, class) in refined.iter().enumerate() {
        // How pure is each recovered category against the hidden truth?
        let mut counts = std::collections::BTreeMap::new();
        for &m in &class.members {
            let label = match split.test.truth[m] {
                GroundTruth::Known(c) => format!("known-{c}"),
                GroundTruth::Unknown => "unknown".to_string(),
            };
            *counts.entry(label).or_insert(0usize) += 1;
        }
        let total: usize = counts.values().sum();
        let purity = counts.values().max().copied().unwrap_or(0) as f64 / total.max(1) as f64;
        println!(
            "  recovered category {}: {} members, {:.0}% dominated by one true label",
            i + 1,
            class.members.len(),
            purity * 100.0
        );
    }
}
